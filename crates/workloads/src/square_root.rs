//! Square-root-by-amplitude-amplification benchmark.
//!
//! Rebuilds the structure of the QASMBench 60-qubit `square_root` circuit: a
//! Grover-style search for the value `x` whose square equals a target `N`. Each
//! amplification round applies
//!
//! 1. an arithmetic **oracle** — square the candidate register into a work
//!    register with Toffoli partial products, compare against the target with a
//!    borrow-ripple comparator, phase-flip the marked state, then uncompute —
//!    followed by
//! 2. the standard **diffusion** operator on the candidate register
//!    (H / X conjugated multi-controlled Z).
//!
//! The circuit is Toffoli-heavy (magic-state demand comparable to the arithmetic
//! benchmarks) but much smaller than the multiplier, matching its role in the
//! paper's benchmark suite.

use lsqca_circuit::register::RegisterRole;
use lsqca_circuit::{Circuit, Qubit};

/// Emission-logic revision of this generator, part of the workload-cache
/// key (see `lsqca_workloads::cache`). Bump it whenever the circuit emitted
/// for an *unchanged* configuration changes, so stale cached artifacts are
/// invalidated; a config-field change already changes the key by itself.
pub const REVISION: u32 = 1;

/// Parameters of the square-root benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquareRootConfig {
    /// Width of the candidate register in bits. The total qubit count is
    /// `6 * candidate_bits` (candidate, square, squaring scratch, comparator
    /// borrow chain, ladder ancillas, flag — see [`square_root_search`]).
    pub candidate_bits: u32,
    /// Number of amplitude-amplification rounds.
    pub grover_rounds: u32,
    /// The classical target value `N` whose root is searched for.
    pub target: u64,
}

impl SquareRootConfig {
    /// The paper's instance: 10-bit candidate register, 60 logical qubits.
    pub const fn paper() -> Self {
        SquareRootConfig {
            candidate_bits: 10,
            grover_rounds: 2,
            target: 625,
        }
    }

    /// Total logical qubits used by the circuit.
    pub const fn total_qubits(self) -> u32 {
        6 * self.candidate_bits
    }
}

impl Default for SquareRootConfig {
    fn default() -> Self {
        SquareRootConfig::paper()
    }
}

/// Width of each internal register given the candidate width `m`.
struct Layout {
    candidate: std::ops::Range<Qubit>,
    square: std::ops::Range<Qubit>,
    scratch: std::ops::Range<Qubit>,
    borrow: std::ops::Range<Qubit>,
    ladder: std::ops::Range<Qubit>,
    flag: Qubit,
}

fn build_layout(circuit: &mut Circuit, m: u32) -> Layout {
    let candidate = circuit.add_register("candidate", RegisterRole::Operand, m);
    let square = circuit.add_register("square", RegisterRole::Result, 2 * m);
    let scratch = circuit.add_register("scratch", RegisterRole::Ancilla, m);
    let borrow = circuit.add_register("borrow", RegisterRole::Ancilla, m);
    let ladder = circuit.add_register("ladder", RegisterRole::Ancilla, m - 1);
    let flag = circuit.add_register("flag", RegisterRole::Ancilla, 1).start;
    Layout {
        candidate,
        square,
        scratch,
        borrow,
        ladder,
        flag,
    }
}

/// Squares the candidate into the square register (Toffoli partial products with
/// a scratch-carried ripple); `inverse` replays the same network to uncompute.
fn squaring_network(circuit: &mut Circuit, layout: &Layout, m: u32, inverse: bool) {
    let cand = |j: u32| layout.candidate.start + j;
    let sq = |k: u32| layout.square.start + k;
    let scratch = |j: u32| layout.scratch.start + j;
    let mut gates: Vec<(Qubit, Qubit, Qubit, Qubit)> = Vec::new();
    for i in 0..m {
        for j in i..m {
            let k = (i + j).min(2 * m - 1);
            gates.push((cand(i), cand(j), sq(k), scratch(i)));
        }
    }
    if inverse {
        gates.reverse();
    }
    for (c1, c2, target, carry) in gates {
        if c1 == c2 {
            // x_i AND x_i = x_i: a CNOT suffices for the diagonal partial product.
            circuit.cnot(c1, target);
        } else {
            circuit.toffoli(c1, c2, target);
            circuit.toffoli(target, c2, carry);
        }
    }
}

/// Compares the square register against the classical target with a
/// borrow-ripple comparator and flips the flag qubit when they match.
type GateThunk<'a> = Box<dyn Fn(&mut Circuit) + 'a>;

fn comparator(circuit: &mut Circuit, layout: &Layout, m: u32, target: u64, inverse: bool) {
    let sq = |k: u32| layout.square.start + k;
    let borrow = |j: u32| layout.borrow.start + j;
    let mut gates: Vec<GateThunk<'_>> = Vec::new();
    for j in 0..m {
        let bit = (target >> j) & 1 == 1;
        let s = sq(j);
        let b = borrow(j);
        gates.push(Box::new(move |c: &mut Circuit| {
            if bit {
                c.x(s);
            }
            c.cnot(s, b);
            if j > 0 {
                c.toffoli(s, borrow(j - 1), b);
            }
            if bit {
                c.x(s);
            }
        }));
    }
    if inverse {
        for g in gates.iter().rev() {
            g(circuit);
        }
    } else {
        for g in gates.iter() {
            g(circuit);
        }
        // Flag set when the top borrow is clear (values matched).
        circuit.x(borrow(m - 1));
        circuit.cnot(borrow(m - 1), layout.flag);
        circuit.x(borrow(m - 1));
    }
}

/// Diffusion operator on the candidate register: H X (multi-controlled Z) X H.
fn diffusion(circuit: &mut Circuit, layout: &Layout) {
    let cand: Vec<Qubit> = layout.candidate.clone().collect();
    for &q in &cand {
        circuit.h(q);
        circuit.x(q);
    }
    // Multi-controlled Z realized as H·MCX·H on the last candidate qubit, with
    // the Toffoli ladder running over the circuit's own ladder register so no
    // extra ancillas are allocated during lowering.
    let (&target, controls) = cand.split_last().expect("candidate register is non-empty");
    let ladder: Vec<Qubit> = layout.ladder.clone().collect();
    circuit.h(target);
    for gate in lsqca_circuit::decompose::mcx_ladder(controls, &ladder, target) {
        circuit.push(gate);
    }
    circuit.h(target);
    for &q in &cand {
        circuit.x(q);
        circuit.h(q);
    }
}

/// Generates the square-root amplitude-amplification circuit.
///
/// # Panics
///
/// Panics if `candidate_bits < 3` (the comparator and diffusion need at least
/// three bits) or `grover_rounds` is zero.
pub fn square_root_search(config: SquareRootConfig) -> Circuit {
    let m = config.candidate_bits;
    assert!(
        m >= 3,
        "square_root needs at least a 3-bit candidate register"
    );
    assert!(
        config.grover_rounds > 0,
        "square_root needs at least one round"
    );

    let mut circuit = Circuit::with_registers(format!("square_root_n{}", config.total_qubits()));
    let layout = build_layout(&mut circuit, m);
    debug_assert_eq!(circuit.num_qubits(), config.total_qubits());

    for q in 0..circuit.num_qubits() {
        circuit.prep_z(q);
    }
    // Uniform superposition over candidates; flag in |−⟩ for phase kickback.
    for q in layout.candidate.clone() {
        circuit.h(q);
    }
    circuit.x(layout.flag);
    circuit.h(layout.flag);

    for _ in 0..config.grover_rounds {
        squaring_network(&mut circuit, &layout, m, false);
        comparator(&mut circuit, &layout, m, config.target, false);
        comparator(&mut circuit, &layout, m, config.target, true);
        squaring_network(&mut circuit, &layout, m, true);
        diffusion(&mut circuit, &layout);
    }

    // Unused ladder ancillas are reserved for the MCX decomposition; touch them
    // so the register is part of the memory footprint as in the original circuit.
    for q in layout.ladder.clone() {
        circuit.prep_z(q);
    }
    for q in layout.candidate.clone() {
        circuit.measure_z(q);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_60_qubits() {
        let cfg = SquareRootConfig::paper();
        assert_eq!(cfg.total_qubits(), 60);
        let c = square_root_search(cfg);
        assert_eq!(c.num_qubits(), 60);
        assert_eq!(c.name(), "square_root_n60");
    }

    #[test]
    fn circuit_is_toffoli_heavy() {
        let c = square_root_search(SquareRootConfig {
            candidate_bits: 4,
            grover_rounds: 1,
            target: 9,
        });
        let stats = c.stats();
        assert!(stats.toffoli_count > 10);
        assert_eq!(stats.mcx_count, 0, "the ladder is emitted explicitly");
        assert_eq!(stats.measurements, 4);
    }

    #[test]
    fn more_rounds_means_more_gates() {
        let one = square_root_search(SquareRootConfig {
            candidate_bits: 4,
            grover_rounds: 1,
            target: 9,
        });
        let two = square_root_search(SquareRootConfig {
            candidate_bits: 4,
            grover_rounds: 2,
            target: 9,
        });
        assert!(two.len() > one.len());
        assert_eq!(two.num_qubits(), one.num_qubits());
    }

    #[test]
    fn lowering_succeeds_and_produces_t_gates() {
        let c = square_root_search(SquareRootConfig {
            candidate_bits: 4,
            grover_rounds: 1,
            target: 4,
        });
        let lowered =
            lsqca_circuit::lower_to_clifford_t(&c, lsqca_circuit::DecomposeConfig::default());
        assert!(lowered.is_lowered());
        assert!(lowered.stats().t_count > 50);
    }

    #[test]
    #[should_panic(expected = "3-bit candidate")]
    fn tiny_candidate_register_panics() {
        let _ = square_root_search(SquareRootConfig {
            candidate_bits: 2,
            grover_rounds: 1,
            target: 1,
        });
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let _ = square_root_search(SquareRootConfig {
            candidate_bits: 4,
            grover_rounds: 0,
            target: 1,
        });
    }
}
