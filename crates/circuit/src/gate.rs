//! Logical gates.

use std::fmt;

/// Index of a logical qubit within a circuit.
pub type Qubit = u32;

/// A logical gate or operation on circuit qubits.
///
/// The set covers everything the benchmark generators need: the Clifford+T base
/// set the compiler consumes plus the composite gates (Toffoli, multi-controlled
/// X) that the decomposition passes lower.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Prepare a qubit in |0⟩.
    PrepZ(Qubit),
    /// Prepare a qubit in |+⟩.
    PrepX(Qubit),
    /// Pauli-X gate.
    X(Qubit),
    /// Pauli-Y gate.
    Y(Qubit),
    /// Pauli-Z gate.
    Z(Qubit),
    /// Hadamard gate.
    H(Qubit),
    /// Phase gate S.
    S(Qubit),
    /// Inverse phase gate S†.
    Sdg(Qubit),
    /// Non-Clifford T gate.
    T(Qubit),
    /// Inverse T gate T†.
    Tdg(Qubit),
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: Qubit,
        /// Target qubit.
        target: Qubit,
    },
    /// Controlled-Z.
    Cz {
        /// First qubit.
        a: Qubit,
        /// Second qubit.
        b: Qubit,
    },
    /// Toffoli (CCX) gate.
    Toffoli {
        /// First control.
        control1: Qubit,
        /// Second control.
        control2: Qubit,
        /// Target qubit.
        target: Qubit,
    },
    /// Multi-controlled X with an arbitrary number of controls.
    MultiControlledX {
        /// Control qubits (must be non-empty and disjoint from the target).
        controls: Vec<Qubit>,
        /// Target qubit.
        target: Qubit,
    },
    /// Destructive Pauli-Z measurement.
    MeasureZ(Qubit),
    /// Destructive Pauli-X measurement.
    MeasureX(Qubit),
}

impl Gate {
    /// Every qubit this gate touches, in syntactic order.
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Gate::PrepZ(q)
            | Gate::PrepX(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::MeasureZ(q)
            | Gate::MeasureX(q) => vec![*q],
            Gate::Cnot { control, target } => vec![*control, *target],
            Gate::Cz { a, b } => vec![*a, *b],
            Gate::Toffoli {
                control1,
                control2,
                target,
            } => vec![*control1, *control2, *target],
            Gate::MultiControlledX { controls, target } => {
                let mut qs = controls.clone();
                qs.push(*target);
                qs
            }
        }
    }

    /// Number of qubits this gate touches.
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// True for the non-Clifford gates that consume a magic state after
    /// compilation (T and T†).
    pub fn is_t_like(&self) -> bool {
        matches!(self, Gate::T(_) | Gate::Tdg(_))
    }

    /// True for gates already in the Clifford+T+measurement base set accepted by
    /// the LSQCA compiler.
    pub fn is_base_gate(&self) -> bool {
        !matches!(self, Gate::Toffoli { .. } | Gate::MultiControlledX { .. })
    }

    /// True for single-qubit Pauli gates, which have negligible latency on a
    /// surface code (they are tracked in the Pauli frame).
    pub fn is_pauli(&self) -> bool {
        matches!(self, Gate::X(_) | Gate::Y(_) | Gate::Z(_))
    }

    /// True for measurement operations.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Gate::MeasureZ(_) | Gate::MeasureX(_))
    }

    /// True for state preparations.
    pub fn is_preparation(&self) -> bool {
        matches!(self, Gate::PrepZ(_) | Gate::PrepX(_))
    }

    /// A short mnemonic for the gate.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::PrepZ(_) => "prep_z",
            Gate::PrepX(_) => "prep_x",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::H(_) => "h",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Cnot { .. } => "cnot",
            Gate::Cz { .. } => "cz",
            Gate::Toffoli { .. } => "toffoli",
            Gate::MultiControlledX { .. } => "mcx",
            Gate::MeasureZ(_) => "measure_z",
            Gate::MeasureX(_) => "measure_x",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())?;
        let qs = self.qubits();
        let formatted: Vec<String> = qs.iter().map(|q| q.to_string()).collect();
        write!(f, " {}", formatted.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_extraction_and_arity() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(
            Gate::Cnot {
                control: 1,
                target: 2
            }
            .qubits(),
            vec![1, 2]
        );
        assert_eq!(
            Gate::Toffoli {
                control1: 0,
                control2: 1,
                target: 2
            }
            .arity(),
            3
        );
        assert_eq!(
            Gate::MultiControlledX {
                controls: vec![0, 1, 2],
                target: 5
            }
            .qubits(),
            vec![0, 1, 2, 5]
        );
    }

    #[test]
    fn classification_predicates() {
        assert!(Gate::T(0).is_t_like());
        assert!(Gate::Tdg(0).is_t_like());
        assert!(!Gate::S(0).is_t_like());
        assert!(Gate::H(0).is_base_gate());
        assert!(!Gate::Toffoli {
            control1: 0,
            control2: 1,
            target: 2
        }
        .is_base_gate());
        assert!(Gate::X(0).is_pauli());
        assert!(!Gate::H(0).is_pauli());
        assert!(Gate::MeasureZ(0).is_measurement());
        assert!(Gate::PrepZ(0).is_preparation());
        assert!(!Gate::PrepZ(0).is_measurement());
    }

    #[test]
    fn display_contains_name_and_qubits() {
        assert_eq!(
            Gate::Cnot {
                control: 4,
                target: 7
            }
            .to_string(),
            "cnot 4 7"
        );
        assert_eq!(Gate::T(2).to_string(), "t 2");
    }
}
