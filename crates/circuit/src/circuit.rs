//! The [`Circuit`] container.

use crate::gate::{Gate, Qubit};
use crate::register::{RegisterMap, RegisterRole};
use crate::stats::CircuitStats;
use std::fmt;
use std::ops::Range;

/// A logical quantum circuit: an ordered gate list over `num_qubits` qubits,
/// optionally structured into named registers.
///
/// The builder-style methods (`h`, `cnot`, `toffoli`, ...) append gates and are
/// what the workload generators use; they panic on out-of-range qubits because a
/// generator that emits such a gate is a programming error, not a runtime
/// condition.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    num_qubits: u32,
    gates: Vec<Gate>,
    registers: RegisterMap,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(name: impl Into<String>, num_qubits: u32) -> Self {
        Circuit {
            name: name.into(),
            num_qubits,
            gates: Vec::new(),
            registers: RegisterMap::new(),
        }
    }

    /// Creates an empty circuit whose qubits are defined by adding registers.
    pub fn with_registers(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            num_qubits: 0,
            gates: Vec::new(),
            registers: RegisterMap::new(),
        }
    }

    /// Adds a named register of `size` qubits and returns its qubit range.
    ///
    /// The circuit's qubit count grows to cover the new register.
    pub fn add_register(
        &mut self,
        name: impl Into<String>,
        role: RegisterRole,
        size: u32,
    ) -> Range<Qubit> {
        let range = self.registers.add(name, role, size);
        self.num_qubits = self.num_qubits.max(self.registers.total_qubits());
        range
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The register structure.
    pub fn registers(&self) -> &RegisterMap {
        &self.registers
    }

    /// Iterates over gates in program order.
    pub fn iter(&self) -> impl Iterator<Item = &Gate> {
        self.gates.iter()
    }

    fn check_qubit(&self, q: Qubit) {
        assert!(
            q < self.num_qubits,
            "qubit {q} out of range for circuit `{}` with {} qubits",
            self.name,
            self.num_qubits
        );
    }

    /// Appends an arbitrary gate.
    ///
    /// # Panics
    ///
    /// Panics if any referenced qubit is out of range or a multi-qubit gate
    /// repeats a qubit.
    pub fn push(&mut self, gate: Gate) {
        let qs = gate.qubits();
        for &q in &qs {
            self.check_qubit(q);
        }
        let mut sorted = qs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            qs.len(),
            "gate {gate} repeats a qubit operand"
        );
        self.gates.push(gate);
    }

    /// Appends every gate from an iterator.
    pub fn extend<I: IntoIterator<Item = Gate>>(&mut self, gates: I) {
        for g in gates {
            self.push(g);
        }
    }

    /// Appends all gates of another circuit (which must use the same qubit space).
    pub fn append(&mut self, other: &Circuit) {
        self.extend(other.gates.iter().cloned());
    }

    /// Appends a |0⟩ preparation.
    pub fn prep_z(&mut self, q: Qubit) {
        self.push(Gate::PrepZ(q));
    }

    /// Appends a |+⟩ preparation.
    pub fn prep_x(&mut self, q: Qubit) {
        self.push(Gate::PrepX(q));
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: Qubit) {
        self.push(Gate::X(q));
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: Qubit) {
        self.push(Gate::Y(q));
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: Qubit) {
        self.push(Gate::Z(q));
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: Qubit) {
        self.push(Gate::H(q));
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: Qubit) {
        self.push(Gate::S(q));
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: Qubit) {
        self.push(Gate::Sdg(q));
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: Qubit) {
        self.push(Gate::T(q));
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: Qubit) {
        self.push(Gate::Tdg(q));
    }

    /// Appends a CNOT gate.
    pub fn cnot(&mut self, control: Qubit, target: Qubit) {
        self.push(Gate::Cnot { control, target });
    }

    /// Appends a CZ gate.
    pub fn cz(&mut self, a: Qubit, b: Qubit) {
        self.push(Gate::Cz { a, b });
    }

    /// Appends a Toffoli gate.
    pub fn toffoli(&mut self, control1: Qubit, control2: Qubit, target: Qubit) {
        self.push(Gate::Toffoli {
            control1,
            control2,
            target,
        });
    }

    /// Appends a multi-controlled X gate.
    pub fn mcx(&mut self, controls: Vec<Qubit>, target: Qubit) {
        self.push(Gate::MultiControlledX { controls, target });
    }

    /// Appends a destructive Z measurement.
    pub fn measure_z(&mut self, q: Qubit) {
        self.push(Gate::MeasureZ(q));
    }

    /// Appends a destructive X measurement.
    pub fn measure_x(&mut self, q: Qubit) {
        self.push(Gate::MeasureX(q));
    }

    /// Computes gate-count statistics.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::from_circuit(self)
    }

    /// True if every gate is in the Clifford+T+measurement base set.
    pub fn is_lowered(&self) -> bool {
        self.gates.iter().all(Gate::is_base_gate)
    }

    /// Returns a copy with a different name.
    pub fn renamed(&self, name: impl Into<String>) -> Circuit {
        let mut c = self.clone();
        c.name = name.into();
        c
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit {} ({} qubits, {} gates)",
            self.name,
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_append_gates() {
        let mut c = Circuit::new("demo", 3);
        c.prep_z(0);
        c.h(0);
        c.s(1);
        c.sdg(1);
        c.t(2);
        c.tdg(2);
        c.x(0);
        c.y(1);
        c.z(2);
        c.cnot(0, 1);
        c.cz(1, 2);
        c.toffoli(0, 1, 2);
        c.mcx(vec![0, 1], 2);
        c.prep_x(0);
        c.measure_z(0);
        c.measure_x(1);
        assert_eq!(c.len(), 16);
        assert!(!c.is_empty());
        assert!(!c.is_lowered());
        assert_eq!(c.iter().count(), 16);
        assert_eq!((&c).into_iter().count(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new("demo", 2);
        c.h(2);
    }

    #[test]
    #[should_panic(expected = "repeats a qubit")]
    fn repeated_operand_panics() {
        let mut c = Circuit::new("demo", 2);
        c.cnot(1, 1);
    }

    #[test]
    fn registers_grow_qubit_count() {
        let mut c = Circuit::with_registers("select");
        let ctrl = c.add_register("control", RegisterRole::Control, 4);
        let sys = c.add_register("system", RegisterRole::System, 9);
        assert_eq!(c.num_qubits(), 13);
        assert_eq!(ctrl, 0..4);
        assert_eq!(sys, 4..13);
        c.h(12);
        assert_eq!(c.registers().role_of(12), Some(RegisterRole::System));
    }

    #[test]
    fn append_concatenates_circuits() {
        let mut a = Circuit::new("a", 2);
        a.h(0);
        let mut b = Circuit::new("b", 2);
        b.cnot(0, 1);
        a.append(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.name(), "a");
    }

    #[test]
    fn renamed_copies_gates() {
        let mut a = Circuit::new("a", 1);
        a.h(0);
        let b = a.renamed("b");
        assert_eq!(b.name(), "b");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn display_contains_header_and_gates() {
        let mut c = Circuit::new("d", 2);
        c.cnot(0, 1);
        let s = c.to_string();
        assert!(s.contains("circuit d (2 qubits, 1 gates)"));
        assert!(s.contains("cnot 0 1"));
    }
}
