//! Logical-level quantum circuit IR for the LSQCA reproduction.
//!
//! Benchmark programs enter the toolchain as circuits over a small logical gate
//! set (Clifford + T + Toffoli + measurements). This crate provides:
//!
//! * [`gate`] — the [`Gate`] enum and helpers.
//! * [`circuit`] — the [`Circuit`] container with builder-style
//!   methods and named [`registers`](register::RegisterMap) (control / temporal /
//!   system registers for SELECT, operand registers for arithmetic, ...).
//! * [`decompose`] — lowering passes: Toffoli → Clifford+T (the standard
//!   seven-T-gate network) and multi-controlled Pauli → Toffoli ladder, producing
//!   the Clifford+T+measurement form the LSQCA compiler consumes.
//! * [`dag`] — dependency analysis: logical depth, width, and per-layer
//!   parallelism used by the motivation study (Sec. III-B).
//! * [`stats`] — gate counting (T-count, Toffoli count, two-qubit count).
//!
//! # Example
//!
//! ```
//! use lsqca_circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new("bell", 2);
//! c.h(0);
//! c.cnot(0, 1);
//! c.measure_z(0);
//! c.measure_z(1);
//! assert_eq!(c.len(), 4);
//! assert_eq!(c.stats().two_qubit_gates, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod dag;
pub mod decompose;
pub mod gate;
pub mod register;
pub mod stats;

pub use circuit::Circuit;
pub use dag::{CircuitDag, LayerSchedule};
pub use decompose::{lower_to_clifford_t, DecomposeConfig};
pub use gate::{Gate, Qubit};
pub use register::{RegisterMap, RegisterRole};
pub use stats::CircuitStats;
