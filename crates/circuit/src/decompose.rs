//! Lowering passes to the Clifford+T+measurement base set.
//!
//! The LSQCA compiler (and the paper's benchmark flow, Sec. VI-A) consumes
//! circuits expressed with Clifford gates (H, S, CNOT), T gates, preparations and
//! single-qubit Pauli measurements. The benchmark generators emit higher-level
//! gates — Toffoli and multi-controlled X — which are lowered here:
//!
//! * Toffoli → the standard seven-T-gate Clifford+T network.
//! * Multi-controlled X over `k ≥ 3` controls → a ladder of `2(k−1) − 1` Toffolis
//!   using `k − 2` freshly allocated ancilla qubits (compute / apply / uncompute),
//!   then each Toffoli is expanded in turn.
//! * CZ → H-conjugated CNOT.

use crate::circuit::Circuit;
use crate::gate::{Gate, Qubit};
use crate::register::RegisterRole;

/// Options controlling the lowering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecomposeConfig {
    /// Expand Toffoli gates into the seven-T Clifford+T network. When `false`,
    /// Toffolis produced by the multi-controlled-X ladder are kept as-is (useful
    /// for inspecting Toffoli-level structure).
    pub expand_toffoli: bool,
    /// Expand CZ gates into H·CNOT·H.
    pub expand_cz: bool,
}

impl Default for DecomposeConfig {
    fn default() -> Self {
        DecomposeConfig {
            expand_toffoli: true,
            expand_cz: true,
        }
    }
}

/// The standard seven-T-gate decomposition of a Toffoli gate.
///
/// The network uses two-qubit CNOTs, T/T† and Hadamards only; it is exact (no
/// measurement or classical feedback) and is the decomposition assumed by the
/// paper's Toffoli-count-to-T-count conversion.
pub fn toffoli_gates(control1: Qubit, control2: Qubit, target: Qubit) -> Vec<Gate> {
    vec![
        Gate::H(target),
        Gate::Cnot {
            control: control2,
            target,
        },
        Gate::Tdg(target),
        Gate::Cnot {
            control: control1,
            target,
        },
        Gate::T(target),
        Gate::Cnot {
            control: control2,
            target,
        },
        Gate::Tdg(target),
        Gate::Cnot {
            control: control1,
            target,
        },
        Gate::T(control2),
        Gate::T(target),
        Gate::H(target),
        Gate::Cnot {
            control: control1,
            target: control2,
        },
        Gate::T(control1),
        Gate::Tdg(control2),
        Gate::Cnot {
            control: control1,
            target: control2,
        },
    ]
}

/// Expands a multi-controlled X into a Toffoli ladder over `ancillas`.
///
/// Requires `ancillas.len() + 2 >= controls.len()`; for `k` controls it uses
/// `k − 2` ancillas and emits `2(k−1) − 1` Toffolis (compute, apply, uncompute).
///
/// # Panics
///
/// Panics if fewer than one control is given or too few ancillas are supplied.
pub fn mcx_ladder(controls: &[Qubit], ancillas: &[Qubit], target: Qubit) -> Vec<Gate> {
    assert!(!controls.is_empty(), "mcx needs at least one control");
    match controls.len() {
        1 => vec![Gate::Cnot {
            control: controls[0],
            target,
        }],
        2 => vec![Gate::Toffoli {
            control1: controls[0],
            control2: controls[1],
            target,
        }],
        k => {
            assert!(
                ancillas.len() >= k - 2,
                "mcx over {k} controls needs {} ancillas, got {}",
                k - 2,
                ancillas.len()
            );
            let mut gates = Vec::new();
            // Compute chain of ANDs into the ancillas.
            gates.push(Gate::Toffoli {
                control1: controls[0],
                control2: controls[1],
                target: ancillas[0],
            });
            for i in 2..k - 1 {
                gates.push(Gate::Toffoli {
                    control1: controls[i],
                    control2: ancillas[i - 2],
                    target: ancillas[i - 1],
                });
            }
            // Apply onto the target controlled by the last control and last ancilla.
            gates.push(Gate::Toffoli {
                control1: controls[k - 1],
                control2: ancillas[k - 3],
                target,
            });
            // Uncompute the ancillas in reverse order.
            for i in (2..k - 1).rev() {
                gates.push(Gate::Toffoli {
                    control1: controls[i],
                    control2: ancillas[i - 2],
                    target: ancillas[i - 1],
                });
            }
            gates.push(Gate::Toffoli {
                control1: controls[0],
                control2: controls[1],
                target: ancillas[0],
            });
            gates
        }
    }
}

/// Lowers `circuit` into the Clifford+T+measurement base set.
///
/// Multi-controlled X gates allocate fresh ancilla qubits appended after the
/// original qubits (registered as an `Ancilla`-role register named
/// `"mcx_ancilla"` when any are needed). The returned circuit satisfies
/// [`Circuit::is_lowered`] when `expand_toffoli` is enabled.
pub fn lower_to_clifford_t(circuit: &Circuit, config: DecomposeConfig) -> Circuit {
    // First pass: how many ancillas does the widest multi-controlled X need?
    let max_mcx_ancillas = circuit
        .gates()
        .iter()
        .filter_map(|g| match g {
            Gate::MultiControlledX { controls, .. } if controls.len() > 2 => {
                Some(controls.len() - 2)
            }
            _ => None,
        })
        .max()
        .unwrap_or(0);

    let base_qubits = circuit.num_qubits();
    let total_qubits = base_qubits + max_mcx_ancillas as u32;
    let mut lowered = Circuit::new(circuit.name().to_string(), total_qubits);
    let ancillas: Vec<Qubit> = (base_qubits..total_qubits).collect();

    for gate in circuit.gates() {
        match gate {
            Gate::Toffoli {
                control1,
                control2,
                target,
            } if config.expand_toffoli => {
                lowered.extend(toffoli_gates(*control1, *control2, *target));
            }
            Gate::MultiControlledX { controls, target } => {
                let ladder = mcx_ladder(controls, &ancillas, *target);
                for g in ladder {
                    match g {
                        Gate::Toffoli {
                            control1,
                            control2,
                            target,
                        } if config.expand_toffoli => {
                            lowered.extend(toffoli_gates(control1, control2, target));
                        }
                        other => lowered.push(other),
                    }
                }
            }
            Gate::Cz { a, b } if config.expand_cz => {
                lowered.push(Gate::H(*b));
                lowered.push(Gate::Cnot {
                    control: *a,
                    target: *b,
                });
                lowered.push(Gate::H(*b));
            }
            other => lowered.push(other.clone()),
        }
    }

    // Preserve the register structure and describe the ancilla block, so that
    // downstream locality analysis still sees control/temporal/system roles.
    let mut rebuilt = Circuit::with_registers(circuit.name().to_string());
    for reg in circuit.registers().registers() {
        rebuilt.add_register(reg.name.clone(), reg.role, reg.len() as u32);
    }
    if rebuilt.num_qubits() < base_qubits {
        rebuilt.add_register(
            "unnamed",
            RegisterRole::Other,
            base_qubits - rebuilt.num_qubits(),
        );
    }
    if max_mcx_ancillas > 0 {
        rebuilt.add_register(
            "mcx_ancilla",
            RegisterRole::Ancilla,
            max_mcx_ancillas as u32,
        );
    }
    rebuilt.extend(lowered.gates().iter().cloned());
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toffoli_decomposition_has_seven_t_gates() {
        let gates = toffoli_gates(0, 1, 2);
        let t_count = gates.iter().filter(|g| g.is_t_like()).count();
        assert_eq!(t_count, 7);
        assert_eq!(
            gates
                .iter()
                .filter(|g| matches!(g, Gate::Cnot { .. }))
                .count(),
            6
        );
        assert_eq!(gates.iter().filter(|g| matches!(g, Gate::H(_))).count(), 2);
        assert!(gates.iter().all(Gate::is_base_gate));
    }

    #[test]
    fn mcx_small_cases() {
        assert_eq!(
            mcx_ladder(&[3], &[], 5),
            vec![Gate::Cnot {
                control: 3,
                target: 5
            }]
        );
        assert_eq!(
            mcx_ladder(&[3, 4], &[], 5),
            vec![Gate::Toffoli {
                control1: 3,
                control2: 4,
                target: 5
            }]
        );
    }

    #[test]
    fn mcx_ladder_toffoli_count_and_ancilla_restoration() {
        for k in 3..8usize {
            let controls: Vec<Qubit> = (0..k as u32).collect();
            let ancillas: Vec<Qubit> = (100..100 + (k as u32 - 2)).collect();
            let gates = mcx_ladder(&controls, &ancillas, 50);
            let toffolis = gates
                .iter()
                .filter(|g| matches!(g, Gate::Toffoli { .. }))
                .count();
            assert_eq!(toffolis, 2 * (k - 1) - 1, "wrong ladder size for k={k}");
            // Each ancilla is targeted an even number of times (computed then
            // uncomputed), so the ladder restores them to |0⟩.
            for &a in &ancillas {
                let writes = gates
                    .iter()
                    .filter(|g| matches!(g, Gate::Toffoli { target, .. } if *target == a))
                    .count();
                assert_eq!(writes % 2, 0, "ancilla {a} not restored for k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn mcx_with_too_few_ancillas_panics() {
        let _ = mcx_ladder(&[0, 1, 2, 3], &[10], 5);
    }

    #[test]
    fn lowering_produces_base_gates_only() {
        let mut c = Circuit::new("composite", 6);
        c.toffoli(0, 1, 2);
        c.mcx(vec![0, 1, 2, 3], 4);
        c.cz(4, 5);
        c.t(5);
        let lowered = lower_to_clifford_t(&c, DecomposeConfig::default());
        assert!(lowered.is_lowered());
        assert!(lowered.num_qubits() >= c.num_qubits());
        // T-count: 7 (toffoli) + 5 toffolis * 7 (mcx over 4 controls) + 1 = 43.
        assert_eq!(lowered.stats().t_count, 7 + 5 * 7 + 1);
    }

    #[test]
    fn lowering_without_toffoli_expansion_keeps_toffolis() {
        let mut c = Circuit::new("composite", 5);
        c.mcx(vec![0, 1, 2], 3);
        let cfg = DecomposeConfig {
            expand_toffoli: false,
            expand_cz: true,
        };
        let lowered = lower_to_clifford_t(&c, cfg);
        assert_eq!(lowered.stats().toffoli_count, 3);
        assert_eq!(lowered.stats().t_count, 0);
    }

    #[test]
    fn lowering_preserves_registers_and_adds_ancilla_register() {
        let mut c = Circuit::with_registers("select-like");
        c.add_register("control", RegisterRole::Control, 4);
        c.add_register("system", RegisterRole::System, 2);
        c.mcx(vec![0, 1, 2, 3], 4);
        let lowered = lower_to_clifford_t(&c, DecomposeConfig::default());
        assert_eq!(lowered.registers().role_of(0), Some(RegisterRole::Control));
        assert_eq!(lowered.registers().role_of(4), Some(RegisterRole::System));
        assert_eq!(
            lowered.registers().by_name("mcx_ancilla").map(|r| r.len()),
            Some(2)
        );
    }

    #[test]
    fn lowering_without_composites_is_identity_on_gates() {
        let mut c = Circuit::new("plain", 2);
        c.h(0);
        c.cnot(0, 1);
        c.t(1);
        c.measure_z(1);
        let lowered = lower_to_clifford_t(&c, DecomposeConfig::default());
        assert_eq!(lowered.gates(), c.gates());
        assert_eq!(lowered.num_qubits(), 2);
    }
}
