//! Gate-count statistics.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate gate counts of a circuit.
///
/// The T-count is the key cost driver for FTQC (each T consumes a distilled
/// magic state); the Toffoli count matters because each Toffoli lowers to seven
/// T gates in the standard decomposition.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total number of gates, including preparations and measurements.
    pub total_gates: u64,
    /// Number of T / T† gates.
    pub t_count: u64,
    /// Number of Toffoli gates (before lowering).
    pub toffoli_count: u64,
    /// Number of multi-controlled-X gates (before lowering).
    pub mcx_count: u64,
    /// Number of two-qubit gates (CNOT, CZ).
    pub two_qubit_gates: u64,
    /// Number of single-qubit Clifford gates (H, S, S†, Paulis).
    pub single_qubit_cliffords: u64,
    /// Number of measurements.
    pub measurements: u64,
    /// Number of state preparations.
    pub preparations: u64,
    /// Count per gate name.
    pub per_gate: BTreeMap<String, u64>,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut stats = CircuitStats::default();
        for gate in circuit.gates() {
            stats.total_gates += 1;
            *stats.per_gate.entry(gate.name().to_string()).or_insert(0) += 1;
            match gate {
                Gate::T(_) | Gate::Tdg(_) => stats.t_count += 1,
                Gate::Toffoli { .. } => stats.toffoli_count += 1,
                Gate::MultiControlledX { .. } => stats.mcx_count += 1,
                Gate::Cnot { .. } | Gate::Cz { .. } => stats.two_qubit_gates += 1,
                Gate::H(_) | Gate::S(_) | Gate::Sdg(_) | Gate::X(_) | Gate::Y(_) | Gate::Z(_) => {
                    stats.single_qubit_cliffords += 1
                }
                Gate::MeasureZ(_) | Gate::MeasureX(_) => stats.measurements += 1,
                Gate::PrepZ(_) | Gate::PrepX(_) => stats.preparations += 1,
            }
        }
        stats
    }

    /// An estimate of the T-count after lowering composite gates: each Toffoli
    /// contributes seven T gates, and a multi-controlled X over `k ≥ 2` controls
    /// lowers to `2(k−1) − 1` Toffolis in the ladder construction.
    pub fn lowered_t_count_estimate(&self, mcx_controls: u32) -> u64 {
        let toffolis_per_mcx = if mcx_controls >= 2 {
            2 * (mcx_controls as u64 - 1) - 1
        } else {
            0
        };
        self.t_count + 7 * (self.toffoli_count + self.mcx_count * toffolis_per_mcx)
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates (T: {}, Toffoli: {}, 2q: {}, meas: {})",
            self.total_gates,
            self.t_count,
            self.toffoli_count,
            self.two_qubit_gates,
            self.measurements
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_category() {
        let mut c = Circuit::new("stats", 4);
        c.prep_z(0);
        c.h(0);
        c.s(1);
        c.x(2);
        c.t(0);
        c.tdg(1);
        c.cnot(0, 1);
        c.cz(2, 3);
        c.toffoli(0, 1, 2);
        c.mcx(vec![0, 1, 2], 3);
        c.measure_z(0);
        let stats = c.stats();
        assert_eq!(stats.total_gates, 11);
        assert_eq!(stats.t_count, 2);
        assert_eq!(stats.toffoli_count, 1);
        assert_eq!(stats.mcx_count, 1);
        assert_eq!(stats.two_qubit_gates, 2);
        assert_eq!(stats.single_qubit_cliffords, 3);
        assert_eq!(stats.measurements, 1);
        assert_eq!(stats.preparations, 1);
        assert_eq!(stats.per_gate["cnot"], 1);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn lowered_t_count_estimate_counts_toffolis() {
        let mut c = Circuit::new("t", 5);
        c.t(0);
        c.toffoli(0, 1, 2);
        let stats = c.stats();
        assert_eq!(stats.lowered_t_count_estimate(3), 1 + 7);

        let mut c = Circuit::new("mcx", 5);
        c.mcx(vec![0, 1, 2], 4);
        // 3 controls -> 2*(3-1)-1 = 3 Toffolis -> 21 T gates.
        assert_eq!(c.stats().lowered_t_count_estimate(3), 21);
    }

    #[test]
    fn empty_circuit_has_zero_stats() {
        let c = Circuit::new("empty", 0);
        let stats = c.stats();
        assert_eq!(stats.total_gates, 0);
        assert_eq!(stats.lowered_t_count_estimate(2), 0);
    }
}
