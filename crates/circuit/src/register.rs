//! Named qubit registers.
//!
//! The access-pattern analysis of Sec. III-B distinguishes the *control*,
//! *temporal*, and *system* registers of SELECT circuits, and the hybrid
//! floorplan of Sec. VI-C pins whole registers into the conventional region.
//! A [`RegisterMap`] attaches that structure to a flat qubit index space.

use crate::gate::Qubit;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// The architectural role of a register, used by locality analysis and hybrid
/// floorplan placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegisterRole {
    /// SELECT control register (the index being iterated).
    Control,
    /// SELECT temporal / ancilla register (Toffoli ladder workspace).
    Temporal,
    /// SELECT system register (the simulated physical system).
    System,
    /// Data operands of arithmetic circuits.
    Operand,
    /// Ancilla qubits of arithmetic circuits.
    Ancilla,
    /// Result / output qubits.
    Result,
    /// Any other role.
    Other,
}

impl RegisterRole {
    /// Every role, in declaration order.
    pub const ALL: [RegisterRole; 7] = [
        RegisterRole::Control,
        RegisterRole::Temporal,
        RegisterRole::System,
        RegisterRole::Operand,
        RegisterRole::Ancilla,
        RegisterRole::Result,
        RegisterRole::Other,
    ];

    /// The stable lowercase name used by `Display` and serialized artifacts.
    pub fn name(self) -> &'static str {
        match self {
            RegisterRole::Control => "control",
            RegisterRole::Temporal => "temporal",
            RegisterRole::System => "system",
            RegisterRole::Operand => "operand",
            RegisterRole::Ancilla => "ancilla",
            RegisterRole::Result => "result",
            RegisterRole::Other => "other",
        }
    }

    /// Parses the name produced by [`RegisterRole::name`].
    pub fn from_name(name: &str) -> Option<RegisterRole> {
        RegisterRole::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for RegisterRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One named, contiguous register of qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Human-readable register name.
    pub name: String,
    /// Role used by analysis passes.
    pub role: RegisterRole,
    /// The contiguous qubit index range `[start, end)`.
    pub range: Range<Qubit>,
}

impl Register {
    /// Number of qubits in the register.
    pub fn len(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// True if the register is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// True if `qubit` belongs to the register.
    pub fn contains(&self, qubit: Qubit) -> bool {
        self.range.contains(&qubit)
    }
}

/// A collection of disjoint registers covering (part of) a circuit's qubits.
///
/// ```
/// use lsqca_circuit::register::{RegisterMap, RegisterRole};
/// let mut map = RegisterMap::new();
/// let ctrl = map.add("control", RegisterRole::Control, 4);
/// let sys = map.add("system", RegisterRole::System, 8);
/// assert_eq!(ctrl, 0..4);
/// assert_eq!(sys, 4..12);
/// assert_eq!(map.role_of(6), Some(RegisterRole::System));
/// assert_eq!(map.total_qubits(), 12);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RegisterMap {
    registers: Vec<Register>,
    next: Qubit,
}

impl RegisterMap {
    /// Creates an empty register map.
    pub fn new() -> Self {
        RegisterMap::default()
    }

    /// Appends a register of `size` qubits and returns its index range.
    pub fn add(&mut self, name: impl Into<String>, role: RegisterRole, size: u32) -> Range<Qubit> {
        let range = self.next..self.next + size;
        self.registers.push(Register {
            name: name.into(),
            role,
            range: range.clone(),
        });
        self.next += size;
        range
    }

    /// Total number of qubits across all registers.
    pub fn total_qubits(&self) -> u32 {
        self.next
    }

    /// All registers in declaration order.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// The register containing `qubit`, if any.
    pub fn register_of(&self, qubit: Qubit) -> Option<&Register> {
        self.registers.iter().find(|r| r.contains(qubit))
    }

    /// The role of the register containing `qubit`, if any.
    pub fn role_of(&self, qubit: Qubit) -> Option<RegisterRole> {
        self.register_of(qubit).map(|r| r.role)
    }

    /// The register with the given name, if any.
    pub fn by_name(&self, name: &str) -> Option<&Register> {
        self.registers.iter().find(|r| r.name == name)
    }

    /// Qubit indices belonging to registers with the given role.
    pub fn qubits_with_role(&self, role: RegisterRole) -> Vec<Qubit> {
        self.registers
            .iter()
            .filter(|r| r.role == role)
            .flat_map(|r| r.range.clone())
            .collect()
    }

    /// Number of qubits per role.
    pub fn role_sizes(&self) -> BTreeMap<RegisterRole, usize> {
        let mut sizes = BTreeMap::new();
        for r in &self.registers {
            *sizes.entry(r.role).or_insert(0) += r.len();
        }
        sizes
    }
}

impl fmt::Display for RegisterMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.registers.is_empty() {
            return f.write_str("(no registers)");
        }
        let parts: Vec<String> = self
            .registers
            .iter()
            .map(|r| format!("{}[{}..{}]", r.name, r.range.start, r.range.end))
            .collect();
        f.write_str(&parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_are_contiguous_and_disjoint() {
        let mut map = RegisterMap::new();
        let a = map.add("a", RegisterRole::Control, 3);
        let b = map.add("b", RegisterRole::System, 5);
        assert_eq!(a, 0..3);
        assert_eq!(b, 3..8);
        assert_eq!(map.total_qubits(), 8);
        assert_eq!(map.registers().len(), 2);
    }

    #[test]
    fn lookup_by_qubit_name_and_role() {
        let mut map = RegisterMap::new();
        map.add("control", RegisterRole::Control, 2);
        map.add("temporal", RegisterRole::Temporal, 3);
        map.add("system", RegisterRole::System, 4);
        assert_eq!(map.role_of(0), Some(RegisterRole::Control));
        assert_eq!(map.role_of(4), Some(RegisterRole::Temporal));
        assert_eq!(map.role_of(8), Some(RegisterRole::System));
        assert_eq!(map.role_of(99), None);
        assert_eq!(map.by_name("temporal").unwrap().len(), 3);
        assert!(map.by_name("missing").is_none());
        assert_eq!(map.qubits_with_role(RegisterRole::System), vec![5, 6, 7, 8]);
        assert_eq!(map.role_sizes()[&RegisterRole::Temporal], 3);
    }

    #[test]
    fn role_names_round_trip() {
        for role in RegisterRole::ALL {
            assert_eq!(RegisterRole::from_name(role.name()), Some(role));
            assert_eq!(role.to_string(), role.name());
        }
        assert_eq!(RegisterRole::from_name("nope"), None);
    }

    #[test]
    fn empty_register_is_allowed() {
        let mut map = RegisterMap::new();
        let r = map.add("empty", RegisterRole::Other, 0);
        assert!(r.is_empty());
        assert!(map.registers()[0].is_empty());
        assert_eq!(map.total_qubits(), 0);
    }

    #[test]
    fn display_lists_registers() {
        let mut map = RegisterMap::new();
        assert_eq!(map.to_string(), "(no registers)");
        map.add("x", RegisterRole::Operand, 2);
        map.add("y", RegisterRole::Result, 2);
        assert_eq!(map.to_string(), "x[0..2], y[2..4]");
    }
}
