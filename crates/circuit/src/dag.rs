//! Dependency analysis of circuits.
//!
//! The motivation study (Sec. III-B) and the baseline model both need to know
//! how much instruction-level parallelism a benchmark offers: the conventional
//! floorplan executes independent logical operations concurrently, while LSQCA's
//! small CR serializes them. [`CircuitDag`] builds the gate dependency graph
//! (two gates conflict when they share a qubit) and derives depth and per-layer
//! parallelism via an ASAP schedule.

use crate::circuit::Circuit;
use crate::gate::Qubit;
use std::collections::HashMap;
use std::fmt;

/// The gate dependency DAG of a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitDag {
    /// `predecessors[i]` lists the indices of gates that must finish before gate `i`.
    predecessors: Vec<Vec<usize>>,
    /// ASAP layer index of each gate.
    asap_layer: Vec<usize>,
    num_gates: usize,
}

impl CircuitDag {
    /// Builds the DAG of `circuit` by linking each gate to the previous gate on
    /// every qubit it touches.
    pub fn new(circuit: &Circuit) -> Self {
        let gates = circuit.gates();
        let mut last_on_qubit: HashMap<Qubit, usize> = HashMap::new();
        let mut predecessors = vec![Vec::new(); gates.len()];
        let mut asap_layer = vec![0usize; gates.len()];

        for (idx, gate) in gates.iter().enumerate() {
            let mut layer = 0usize;
            for q in gate.qubits() {
                if let Some(&prev) = last_on_qubit.get(&q) {
                    predecessors[idx].push(prev);
                    layer = layer.max(asap_layer[prev] + 1);
                }
                last_on_qubit.insert(q, idx);
            }
            predecessors[idx].sort_unstable();
            predecessors[idx].dedup();
            asap_layer[idx] = layer;
        }

        CircuitDag {
            predecessors,
            asap_layer,
            num_gates: gates.len(),
        }
    }

    /// Number of gates in the DAG.
    pub fn len(&self) -> usize {
        self.num_gates
    }

    /// True if the circuit had no gates.
    pub fn is_empty(&self) -> bool {
        self.num_gates == 0
    }

    /// Direct predecessors of gate `index`.
    pub fn predecessors(&self, index: usize) -> &[usize] {
        &self.predecessors[index]
    }

    /// The ASAP layer of gate `index` (0 for gates with no predecessors).
    pub fn layer_of(&self, index: usize) -> usize {
        self.asap_layer[index]
    }

    /// The logical depth: number of ASAP layers.
    pub fn depth(&self) -> usize {
        self.asap_layer.iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// Groups gate indices by ASAP layer.
    pub fn layers(&self) -> LayerSchedule {
        let depth = self.depth();
        let mut layers = vec![Vec::new(); depth];
        for (idx, &layer) in self.asap_layer.iter().enumerate() {
            layers[layer].push(idx);
        }
        LayerSchedule { layers }
    }
}

/// An ASAP layering of a circuit: each layer holds gates that can execute
/// concurrently because no two of them share a qubit with an earlier unfinished
/// gate.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LayerSchedule {
    layers: Vec<Vec<usize>>,
}

impl LayerSchedule {
    /// The layers in execution order; each inner vector lists gate indices.
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.layers
    }

    /// Number of layers (the circuit depth).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The widest layer (maximum instruction-level parallelism).
    pub fn max_parallelism(&self) -> usize {
        self.layers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average gates per layer.
    pub fn average_parallelism(&self) -> f64 {
        if self.layers.is_empty() {
            0.0
        } else {
            let total: usize = self.layers.iter().map(Vec::len).sum();
            total as f64 / self.layers.len() as f64
        }
    }
}

impl fmt::Display for LayerSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} layers, max parallelism {}, average {:.2}",
            self.depth(),
            self.max_parallelism(),
            self.average_parallelism()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn independent_gates_share_a_layer() {
        let mut c = Circuit::new("parallel", 4);
        c.h(0);
        c.h(1);
        c.h(2);
        c.h(3);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.depth(), 1);
        let layers = dag.layers();
        assert_eq!(layers.depth(), 1);
        assert_eq!(layers.max_parallelism(), 4);
        assert_eq!(layers.average_parallelism(), 4.0);
    }

    #[test]
    fn chained_gates_serialize() {
        let mut c = Circuit::new("chain", 1);
        c.h(0);
        c.t(0);
        c.h(0);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.layer_of(2), 2);
    }

    #[test]
    fn two_qubit_gates_join_dependencies() {
        let mut c = Circuit::new("join", 2);
        c.h(0); // gate 0
        c.t(1); // gate 1
        c.cnot(0, 1); // gate 2 depends on both
        c.h(0); // gate 3 depends on gate 2
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.predecessors(2), &[0, 1]);
        assert_eq!(dag.predecessors(3), &[2]);
        assert_eq!(dag.depth(), 3);
        let layers = dag.layers();
        assert_eq!(layers.layers()[0], vec![0, 1]);
        assert_eq!(layers.layers()[1], vec![2]);
    }

    #[test]
    fn empty_circuit_has_zero_depth() {
        let c = Circuit::new("empty", 3);
        let dag = CircuitDag::new(&c);
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.layers().max_parallelism(), 0);
        assert_eq!(dag.layers().average_parallelism(), 0.0);
        assert!(!dag.layers().to_string().is_empty());
    }

    #[test]
    fn ghz_circuit_depth_is_linear() {
        let n = 8;
        let mut c = Circuit::new("ghz", n);
        c.h(0);
        for q in 1..n {
            c.cnot(q - 1, q);
        }
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.depth(), n as usize);
        assert_eq!(dag.len(), n as usize);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::circuit::Circuit;
    use proptest::prelude::*;

    proptest! {
        /// The ASAP layering is a valid topological schedule: every gate sits in
        /// a strictly later layer than each of its predecessors, and depth never
        /// exceeds the gate count.
        #[test]
        fn asap_layers_respect_dependencies(
            gates in proptest::collection::vec((0u32..6, 0u32..6, proptest::bool::ANY), 1..60)
        ) {
            let mut c = Circuit::new("prop", 6);
            for (a, b, two_qubit) in gates {
                if two_qubit && a != b {
                    c.cnot(a, b);
                } else {
                    c.h(a);
                }
            }
            let dag = CircuitDag::new(&c);
            prop_assert!(dag.depth() <= dag.len());
            for idx in 0..dag.len() {
                for &pred in dag.predecessors(idx) {
                    prop_assert!(dag.layer_of(pred) < dag.layer_of(idx));
                }
            }
            // Layer sizes sum to the gate count.
            let total: usize = dag.layers().layers().iter().map(Vec::len).sum();
            prop_assert_eq!(total, dag.len());
        }
    }
}
