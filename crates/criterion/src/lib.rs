//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no access to a crate registry,
//! so this in-workspace crate provides the subset of the criterion API the
//! workspace's benches use: `Criterion`, benchmark groups, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up for ~100 ms, then
//! `sample_size` samples are collected, each long enough to amortize timer
//! overhead. The harness prints a `min / median / mean` summary per benchmark
//! and, when the `CRITERION_JSON` environment variable names a file, appends
//! one JSON object per benchmark (newline-delimited) so scripts can build
//! `BENCH_*.json` baselines without parsing human-oriented output.
//!
//! Command line: a single optional positional argument is treated as a
//! substring filter on `group/name`; `--bench`/`--exact` style flags that
//! `cargo bench` forwards are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How `iter_batched` sizes its input batches. The stand-in runs one routine
/// call per setup call regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup cost comparable to the routine.
    SmallInput,
    /// Large inputs: setup dominates; batches would be smaller upstream.
    LargeInput,
    /// One routine call per setup call.
    PerIteration,
}

/// One measured benchmark, as recorded in the JSON output.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (from [`Criterion::benchmark_group`]).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Median time per iteration in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample in nanoseconds per iteration.
    pub min_ns: f64,
    /// Total iterations measured across all samples.
    pub iterations: u64,
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with(".rs"));
        Criterion {
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Parses command-line arguments (already done by `default`; kept for API
    /// compatibility with upstream's builder style).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
    }

    fn record(&mut self, result: BenchResult) {
        self.results.push(result);
    }

    /// Prints the summary and writes the JSON records; called by
    /// `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                if let Err(err) = self.append_json(&path) {
                    eprintln!("warning: could not write CRITERION_JSON={path}: {err}");
                }
            }
        }
    }

    fn append_json(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        for r in &self.results {
            let mut line = String::new();
            let _ = write!(
                line,
                r#"{{"group":"{}","name":"{}","mean_ns":{},"median_ns":{},"min_ns":{},"iterations":{}}}"#,
                r.group, r.name, r.mean_ns, r.median_ns, r.min_ns, r.iterations
            );
            writeln!(file, "{line}")?;
        }
        Ok(())
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and must call one of its
    /// `iter*` methods.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let id = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.criterion.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
            iterations: 0,
        };
        f(&mut bencher);
        let Some(result) = bencher.summarize(&self.name, &name) else {
            eprintln!("{id}: no measurement taken");
            return;
        };
        println!(
            "{id}  time: [{} {} {}]  ({} iterations)",
            format_ns(result.min_ns),
            format_ns(result.median_ns),
            format_ns(result.mean_ns),
            result.iterations
        );
        self.criterion.record(result);
    }

    /// Ends the group (upstream flushes reports here; the stand-in records
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Target duration for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Target duration of the warm-up phase.
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also estimates the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_TARGET {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let iters_per_sample =
            ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64).max(1);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
            self.iterations += iters_per_sample;
        }
    }

    /// Measures `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up.
        let warmup_start = Instant::now();
        let mut measured = Duration::ZERO;
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_TARGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            warmup_iters += 1;
        }
        let per_iter = measured.as_secs_f64() / warmup_iters.max(1) as f64;
        let iters_per_sample =
            ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64).max(1);

        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            self.samples
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            self.iterations += iters_per_sample;
        }
    }

    fn summarize(&self, group: &str, name: &str) -> Option<BenchResult> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(BenchResult {
            group: group.to_string(),
            name: name.to_string(),
            mean_ns: mean,
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            iterations: self.iterations,
        })
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut c = Criterion {
            filter: None,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        for r in &c.results {
            assert!(r.mean_ns > 0.0);
            assert!(r.min_ns <= r.mean_ns * 1.5);
            assert!(r.iterations >= 3);
        }
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("match_me".into()),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("skipped", |b| b.iter(|| 0));
        group.bench_function("match_me", |b| b.iter(|| 0));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].name, "match_me");
    }
}
