//! Hybrid floorplan composition and runtime hot-set migration.
//!
//! The paper's hybrid floorplan (Sec. V-D / VI-C) pins a *statically chosen*
//! hot set into a conventional unit-latency region and leaves the rest in
//! SAM. The memory-hierarchy literature it builds on (Thaker et al., ISCA
//! 2006) treats **dynamic** promotion/demotion between hierarchy levels as
//! the defining feature of a memory hierarchy; this module supplies the
//! missing pieces:
//!
//! * [`FloorplanSpec`] — a descriptor composing N banks of *mixed* flavours
//!   (point, dual-port point, line) behind one
//!   [`MemorySystem`](crate::MemorySystem), via
//!   [`MemorySystem::from_spec`](crate::MemorySystem::from_spec).
//! * [`MigrationPolicy`] — the pluggable runtime policy deciding, on every
//!   load/store event, whether the accessed qubit should swap places with a
//!   conventional-region resident. [`StaticPolicy`] (never migrate — the
//!   paper's compile-time hot set), [`LruPolicy`] (promote every cold access,
//!   evict the least-recently-used hot qubit), and [`FreqDecayPolicy`]
//!   (promote when a decayed access-frequency score overtakes the coldest
//!   hot qubit's) are provided; [`PolicyKind`] names them for configuration
//!   plumbing.
//!
//! The migration itself is performed by
//! [`MemorySystem::migrate`](crate::MemorySystem::migrate), which keeps the
//! per-bank cell invariants and the cross-bank checkout audit intact; the
//! simulator charges the returned movement latency plus the policy's
//! [`overhead`](MigrationPolicy::overhead) to the run's
//! `ExecutionStats::migration_beats`.

use lsqca_lattice::{Beats, QubitTag};
use std::fmt;

/// The flavour of one SAM bank inside a [`FloorplanSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankKind {
    /// Single-port point SAM (`n + 1` cells, one scan vacancy).
    PointSam,
    /// Dual-port point SAM (`n + 2` cells, a scan vacancy at each of two
    /// opposing CR ports).
    DualPointSam,
    /// Line SAM (`n + C` cells, a scan line).
    LineSam,
}

impl BankKind {
    /// Short label used in floorplan descriptors.
    pub fn label(self) -> &'static str {
        match self {
            BankKind::PointSam => "point",
            BankKind::DualPointSam => "dual-point",
            BankKind::LineSam => "line",
        }
    }
}

/// A floorplan descriptor composing an arbitrary mix of SAM banks behind one
/// memory system. [`crate::FloorplanKind`] covers the paper's uniform
/// designs; a spec additionally expresses heterogeneous hierarchies (e.g. a
/// fast dual-port point bank backed by a dense line bank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloorplanSpec {
    /// One entry per SAM bank; cold qubits are distributed round-robin over
    /// them in order. Empty means every qubit lives in the conventional
    /// region (the baseline floorplan).
    pub banks: Vec<BankKind>,
    /// Number of register cells in the CR.
    pub cr_slots: u32,
    /// Use the locality-aware store policy (Sec. V-B).
    pub locality_aware_store: bool,
}

impl FloorplanSpec {
    /// A spec of `count` identical banks with the paper's CR defaults.
    pub fn uniform(kind: BankKind, count: usize) -> Self {
        FloorplanSpec {
            banks: vec![kind; count],
            cr_slots: 2,
            locality_aware_store: true,
        }
    }

    /// A human-readable label, e.g. `"point+line floorplan"`.
    pub fn label(&self) -> String {
        if self.banks.is_empty() {
            return "Conventional".to_string();
        }
        let kinds: Vec<&str> = self.banks.iter().map(|k| k.label()).collect();
        format!("{} floorplan", kinds.join("+"))
    }
}

impl fmt::Display for FloorplanSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A runtime promotion/demotion policy for hybrid floorplans.
///
/// The simulator calls [`on_access`](MigrationPolicy::on_access) for every
/// memory operand of every load/store/in-memory instruction. A returned
/// victim is a *proposal*: the simulator applies it only when the swap is
/// legal (the accessed qubit is stored in a bank and the victim is a
/// conventional resident) and then confirms via
/// [`applied`](MigrationPolicy::applied) — a policy must keep its hot-set
/// bookkeeping in `applied`, never in `on_access`, because proposals made
/// while the qubit is checked out (store events) are dropped.
pub trait MigrationPolicy: fmt::Debug + Send {
    /// The policy's short name, used in sweep output and labels.
    fn name(&self) -> &'static str;

    /// Resets the policy for a fresh run over `num_qubits` qubits with `hot`
    /// initially pinned in the conventional region.
    fn begin(&mut self, num_qubits: u32, hot: &[QubitTag]);

    /// Records an access to `qubit` at logical time `now` (a monotone event
    /// counter). Returns the conventional-region victim to demote if `qubit`
    /// should be promoted, or `None` to leave the floorplan unchanged.
    fn on_access(&mut self, qubit: QubitTag, now: u64) -> Option<QubitTag>;

    /// Confirms that a proposed migration was applied.
    fn applied(&mut self, promoted: QubitTag, demoted: QubitTag);

    /// Fixed bookkeeping latency charged per applied migration, on top of the
    /// physical movement cost returned by
    /// [`MemorySystem::migrate`](crate::MemorySystem::migrate).
    fn overhead(&self) -> Beats {
        Beats(1)
    }

    /// Clones the policy behind its trait object (policies ride inside the
    /// clonable `Simulator`).
    fn boxed_clone(&self) -> Box<dyn MigrationPolicy>;
}

impl Clone for Box<dyn MigrationPolicy> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Dense per-qubit hot-set membership shared by the stateful policies.
#[derive(Debug, Clone, Default)]
struct HotSet {
    member: Vec<bool>,
    list: Vec<QubitTag>,
}

impl HotSet {
    fn begin(&mut self, num_qubits: u32, hot: &[QubitTag]) {
        self.member.clear();
        self.member.resize(num_qubits as usize, false);
        self.list.clear();
        for &q in hot {
            if (q.0 as usize) < self.member.len() && !self.member[q.0 as usize] {
                self.member[q.0 as usize] = true;
                self.list.push(q);
            }
        }
    }

    fn contains(&self, q: QubitTag) -> bool {
        self.member.get(q.0 as usize).copied().unwrap_or(false)
    }

    fn swap(&mut self, promoted: QubitTag, demoted: QubitTag) {
        if let Some(m) = self.member.get_mut(promoted.0 as usize) {
            *m = true;
        }
        if let Some(m) = self.member.get_mut(demoted.0 as usize) {
            *m = false;
        }
        if let Some(slot) = self.list.iter_mut().find(|q| **q == demoted) {
            *slot = promoted;
        }
    }
}

/// Never migrates: the compile-time hot set stays pinned for the whole run —
/// the paper's static hybrid floorplan, used as the baseline every dynamic
/// policy is compared against.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPolicy;

impl MigrationPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }

    fn begin(&mut self, _num_qubits: u32, _hot: &[QubitTag]) {}

    fn on_access(&mut self, _qubit: QubitTag, _now: u64) -> Option<QubitTag> {
        None
    }

    fn applied(&mut self, _promoted: QubitTag, _demoted: QubitTag) {
        unreachable!("the static policy never proposes a migration");
    }

    fn overhead(&self) -> Beats {
        Beats::ZERO
    }

    fn boxed_clone(&self) -> Box<dyn MigrationPolicy> {
        Box::new(*self)
    }
}

/// Classic LRU: every access to a cold qubit proposes promoting it over the
/// least-recently-used hot qubit. Aggressive — on streaming access patterns
/// it thrashes (each migration pays real movement beats), which is exactly
/// the behaviour the policy comparison in the `hybrid-migrate` sweep is
/// there to expose.
///
/// Victim selection is a lazily-invalidated min-heap over `(stamp, qubit)`,
/// so each access costs `O(log hot)` amortized instead of the former
/// `O(hot)` scan — the prerequisite for thousand-qubit hot sets. Stale heap
/// entries (a re-accessed or demoted qubit) are detected by comparing the
/// entry's stamp against the live `last_used` table and popped on sight;
/// every access pushes at most one entry, so the pops are amortized against
/// the pushes.
#[derive(Debug, Clone, Default)]
pub struct LruPolicy {
    last_used: Vec<u64>,
    hot: HotSet,
    queue: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
}

impl LruPolicy {
    /// The least-recently-used hot qubit, skipping stale heap entries. Peeks
    /// without popping the winning entry: a proposal may be dropped by the
    /// simulator, in which case the victim stays ranked exactly where it was.
    fn coldest(&mut self) -> Option<QubitTag> {
        while let Some(&std::cmp::Reverse((stamp, tag))) = self.queue.peek() {
            let q = QubitTag(tag);
            if self.hot.contains(q) && self.last_used.get(tag as usize).copied() == Some(stamp) {
                return Some(q);
            }
            self.queue.pop();
        }
        None
    }
}

impl MigrationPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn begin(&mut self, num_qubits: u32, hot: &[QubitTag]) {
        self.last_used.clear();
        self.last_used.resize(num_qubits as usize, 0);
        self.hot.begin(num_qubits, hot);
        self.queue.clear();
        for &q in &self.hot.list {
            self.queue.push(std::cmp::Reverse((0, q.0)));
        }
    }

    fn on_access(&mut self, qubit: QubitTag, now: u64) -> Option<QubitTag> {
        let idx = qubit.0 as usize;
        if idx >= self.last_used.len() {
            return None;
        }
        self.last_used[idx] = now + 1;
        if self.hot.contains(qubit) {
            self.queue.push(std::cmp::Reverse((now + 1, qubit.0)));
            return None;
        }
        self.coldest().filter(|&v| v != qubit)
    }

    fn applied(&mut self, promoted: QubitTag, demoted: QubitTag) {
        self.hot.swap(promoted, demoted);
        if let Some(&stamp) = self.last_used.get(promoted.0 as usize) {
            self.queue.push(std::cmp::Reverse((stamp, promoted.0)));
        }
    }

    fn boxed_clone(&self) -> Box<dyn MigrationPolicy> {
        Box::new(self.clone())
    }
}

/// Exponentially-decayed access-frequency ranking: each access adds one to
/// the qubit's score, and scores halve every [`half_life`] accesses. A cold
/// qubit is promoted only when its decayed score overtakes the coldest hot
/// qubit's by the [`margin`] factor, so one-off touches never trigger the
/// (physically expensive) migration but a phase shift in the working set
/// does.
///
/// [`half_life`]: FreqDecayPolicy::half_life
/// [`margin`]: FreqDecayPolicy::margin
///
/// Like [`LruPolicy`], victim selection is `O(log hot)` via a
/// lazily-invalidated min-heap. Decayed scores themselves cannot be heap
/// keys (every score changes on every tick), but their *ordering* is
/// time-invariant: `decayed(v, now) = score_v · 2^((last_v − now)/h)`, so
/// ranking by the log-domain key `ln(score_v) + last_v · ln2 / h` — constant
/// between accesses to `v` — orders hot qubits identically for every `now`.
#[derive(Debug, Clone)]
pub struct FreqDecayPolicy {
    /// Accesses after which a score halves.
    pub half_life: u64,
    /// Promote only when `cold_score > margin * coldest_hot_score`.
    pub margin: f64,
    score: Vec<f64>,
    last_seen: Vec<u64>,
    /// Per-qubit log-domain rank, updated on access; the heap's validity
    /// check compares entries against this table.
    rank: Vec<f64>,
    hot: HotSet,
    queue: std::collections::BinaryHeap<std::cmp::Reverse<(RankKey, u32)>>,
}

/// A total order over log-domain ranks (`f64::total_cmp`), so the values can
/// serve as heap keys. Never NaN: scores are sums of non-negative decays, so
/// a rank is finite or `-inf` (the never-accessed score of zero).
#[derive(Debug, Clone, Copy)]
struct RankKey(f64);

impl PartialEq for RankKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for RankKey {}

impl PartialOrd for RankKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The time-invariant log-domain rank of a qubit with `score` last touched
/// at `last_seen`: `ln(score) + last_seen · ln2 / half_life`.
fn rank_key(score: f64, last_seen: u64, half_life: u64) -> f64 {
    score.ln() + (last_seen as f64) * std::f64::consts::LN_2 / half_life as f64
}

impl Default for FreqDecayPolicy {
    fn default() -> Self {
        FreqDecayPolicy {
            half_life: 64,
            margin: 1.5,
            score: Vec::new(),
            last_seen: Vec::new(),
            rank: Vec::new(),
            hot: HotSet::default(),
            queue: std::collections::BinaryHeap::new(),
        }
    }
}

impl FreqDecayPolicy {
    /// The score of `q` decayed to time `now`.
    fn decayed(&self, q: QubitTag, now: u64) -> f64 {
        let idx = q.0 as usize;
        let age = now.saturating_sub(self.last_seen[idx]);
        self.score[idx] * 0.5f64.powf(age as f64 / self.half_life as f64)
    }

    /// The lowest-ranked hot qubit, skipping stale heap entries; peeks
    /// without popping so a dropped proposal leaves the ranking untouched.
    fn coldest(&mut self) -> Option<QubitTag> {
        while let Some(&std::cmp::Reverse((key, tag))) = self.queue.peek() {
            let q = QubitTag(tag);
            if self.hot.contains(q) && self.rank.get(tag as usize).map(|&r| RankKey(r)) == Some(key)
            {
                return Some(q);
            }
            self.queue.pop();
        }
        None
    }
}

impl MigrationPolicy for FreqDecayPolicy {
    fn name(&self) -> &'static str {
        "freq-decay"
    }

    fn begin(&mut self, num_qubits: u32, hot: &[QubitTag]) {
        self.score.clear();
        self.score.resize(num_qubits as usize, 0.0);
        self.last_seen.clear();
        self.last_seen.resize(num_qubits as usize, 0);
        self.rank.clear();
        self.rank
            .resize(num_qubits as usize, rank_key(0.0, 0, self.half_life));
        self.hot.begin(num_qubits, hot);
        self.queue.clear();
        for &q in &self.hot.list {
            self.queue
                .push(std::cmp::Reverse((RankKey(self.rank[q.0 as usize]), q.0)));
        }
    }

    fn on_access(&mut self, qubit: QubitTag, now: u64) -> Option<QubitTag> {
        let idx = qubit.0 as usize;
        if idx >= self.score.len() {
            return None;
        }
        let fresh = self.decayed(qubit, now) + 1.0;
        self.score[idx] = fresh;
        self.last_seen[idx] = now;
        self.rank[idx] = rank_key(fresh, now, self.half_life);
        if self.hot.contains(qubit) {
            self.queue
                .push(std::cmp::Reverse((RankKey(self.rank[idx]), qubit.0)));
            return None;
        }
        let victim = self.coldest()?;
        let coldest = self.decayed(victim, now);
        (victim != qubit && fresh > self.margin * coldest).then_some(victim)
    }

    fn applied(&mut self, promoted: QubitTag, demoted: QubitTag) {
        self.hot.swap(promoted, demoted);
        if let Some(&rank) = self.rank.get(promoted.0 as usize) {
            self.queue
                .push(std::cmp::Reverse((RankKey(rank), promoted.0)));
        }
    }

    fn overhead(&self) -> Beats {
        Beats(2)
    }

    fn boxed_clone(&self) -> Box<dyn MigrationPolicy> {
        Box::new(self.clone())
    }
}

/// Names the built-in migration policies, for configuration plumbing (sweep
/// configs, CLI flags, experiment labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// [`StaticPolicy`]: the compile-time hot set, never migrated.
    Static,
    /// [`LruPolicy`]: promote every cold access, evict least-recently-used.
    Lru,
    /// [`FreqDecayPolicy`]: promote on decayed-frequency overtake.
    FreqDecay,
}

impl PolicyKind {
    /// Every built-in policy, in comparison order.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Static, PolicyKind::Lru, PolicyKind::FreqDecay];

    /// The policy's short name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::Lru => "lru",
            PolicyKind::FreqDecay => "freq-decay",
        }
    }

    /// Parses a policy name (case-insensitive).
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        let lower = name.to_ascii_lowercase();
        PolicyKind::ALL.into_iter().find(|k| k.name() == lower)
    }

    /// Instantiates the policy with its default parameters.
    pub fn build(self) -> Box<dyn MigrationPolicy> {
        match self {
            PolicyKind::Static => Box::new(StaticPolicy),
            PolicyKind::Lru => Box::new(LruPolicy::default()),
            PolicyKind::FreqDecay => Box::new(FreqDecayPolicy::default()),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(v: &[u32]) -> Vec<QubitTag> {
        v.iter().map(|&t| QubitTag(t)).collect()
    }

    #[test]
    fn spec_labels_and_uniform_construction() {
        let spec = FloorplanSpec::uniform(BankKind::LineSam, 2);
        assert_eq!(spec.banks.len(), 2);
        assert_eq!(spec.label(), "line+line floorplan");
        let mixed = FloorplanSpec {
            banks: vec![BankKind::DualPointSam, BankKind::LineSam],
            cr_slots: 2,
            locality_aware_store: true,
        };
        assert_eq!(mixed.to_string(), "dual-point+line floorplan");
        assert_eq!(
            FloorplanSpec {
                banks: vec![],
                cr_slots: 2,
                locality_aware_store: true
            }
            .label(),
            "Conventional"
        );
    }

    #[test]
    fn static_policy_never_proposes() {
        let mut policy = StaticPolicy;
        policy.begin(10, &tags(&[0, 1]));
        for now in 0..50 {
            assert_eq!(policy.on_access(QubitTag(5), now), None);
        }
        assert_eq!(policy.overhead(), Beats::ZERO);
    }

    #[test]
    fn lru_policy_evicts_the_least_recently_used() {
        let mut policy = LruPolicy::default();
        policy.begin(10, &tags(&[0, 1, 2]));
        // Touch hot qubits 1 and 2; qubit 0 becomes the LRU victim.
        assert_eq!(policy.on_access(QubitTag(1), 0), None);
        assert_eq!(policy.on_access(QubitTag(2), 1), None);
        assert_eq!(policy.on_access(QubitTag(7), 2), Some(QubitTag(0)));
        policy.applied(QubitTag(7), QubitTag(0));
        // Qubit 7 is now hot; 0 is cold and proposes evicting the stalest.
        assert_eq!(policy.on_access(QubitTag(7), 3), None);
        assert_eq!(policy.on_access(QubitTag(0), 4), Some(QubitTag(1)));
    }

    #[test]
    fn freq_decay_promotes_only_on_overtake() {
        let mut policy = FreqDecayPolicy::default();
        policy.begin(10, &tags(&[0, 1]));
        // Build up the hot qubits' scores.
        for now in 0..6 {
            policy.on_access(QubitTag(now as u32 % 2), now);
        }
        // A single cold touch does not overtake.
        assert_eq!(policy.on_access(QubitTag(5), 6), None);
        // A burst does.
        let mut promoted = false;
        for now in 7..40 {
            if let Some(victim) = policy.on_access(QubitTag(5), now) {
                policy.applied(QubitTag(5), victim);
                promoted = true;
                break;
            }
        }
        assert!(promoted, "a sustained burst must overtake the hot set");
    }

    #[test]
    fn policies_clone_behind_the_trait_object() {
        for kind in PolicyKind::ALL {
            let mut policy = kind.build();
            policy.begin(8, &tags(&[0, 1]));
            let _ = policy.on_access(QubitTag(5), 0);
            let cloned = policy.clone();
            assert_eq!(cloned.name(), policy.name());
        }
    }

    #[test]
    fn policy_kind_round_trips() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(PolicyKind::from_name("nope"), None);
        assert_eq!(
            PolicyKind::from_name("FREQ-DECAY"),
            Some(PolicyKind::FreqDecay)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};

    /// A deliberately naive LRU model: a `HashMap` of last-use times and a
    /// `HashSet` hot set, re-ranked from scratch on every access.
    #[derive(Debug, Default)]
    struct NaiveLru {
        last_used: HashMap<u32, u64>,
        hot: HashSet<u32>,
    }

    impl NaiveLru {
        fn on_access(&mut self, q: u32, now: u64) -> Option<u32> {
            self.last_used.insert(q, now + 1);
            if self.hot.contains(&q) || self.hot.is_empty() {
                return None;
            }
            self.hot
                .iter()
                .copied()
                .min_by_key(|v| (self.last_used.get(v).copied().unwrap_or(0), *v))
        }

        fn applied(&mut self, promoted: u32, demoted: u32) {
            self.hot.remove(&demoted);
            self.hot.insert(promoted);
        }
    }

    /// A naive frequency-decay model recomputing every decayed score with
    /// plain `powf` on demand, and every log-domain rank (the victim order
    /// shared with the heap-based policy — see [`FreqDecayPolicy`]) from
    /// scratch each access.
    #[derive(Debug)]
    struct NaiveFreqDecay {
        half_life: f64,
        margin: f64,
        score: HashMap<u32, f64>,
        last: HashMap<u32, u64>,
        hot: HashSet<u32>,
    }

    impl NaiveFreqDecay {
        fn decayed(&self, q: u32, now: u64) -> f64 {
            let age = now.saturating_sub(self.last.get(&q).copied().unwrap_or(0));
            self.score.get(&q).copied().unwrap_or(0.0) * 0.5f64.powf(age as f64 / self.half_life)
        }

        /// The same formula as the policy's `rank_key`, recomputed on demand.
        fn rank(&self, q: u32) -> f64 {
            let score = self.score.get(&q).copied().unwrap_or(0.0);
            let last = self.last.get(&q).copied().unwrap_or(0);
            score.ln() + (last as f64) * std::f64::consts::LN_2 / self.half_life
        }

        fn on_access(&mut self, q: u32, now: u64) -> Option<u32> {
            let fresh = self.decayed(q, now) + 1.0;
            self.score.insert(q, fresh);
            self.last.insert(q, now);
            if self.hot.contains(&q) {
                return None;
            }
            let victim = self
                .hot
                .iter()
                .copied()
                .map(|v| (self.rank(v), v))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))?
                .1;
            (fresh > self.margin * self.decayed(victim, now)).then_some(victim)
        }

        fn applied(&mut self, promoted: u32, demoted: u32) {
            self.hot.remove(&demoted);
            self.hot.insert(promoted);
        }
    }

    proptest! {
        /// The dense-table `LruPolicy` proposes exactly what the naive
        /// map/set reference model proposes over random load/store traces,
        /// with proposals randomly applied or dropped (the simulator drops
        /// proposals made while the qubit is checked out).
        #[test]
        fn lru_policy_matches_the_naive_model(
            n in 4u32..60,
            hot in proptest::collection::hash_set(0u32..60, 1..6),
            trace in proptest::collection::vec((0u32..60, proptest::bool::ANY), 1..150),
        ) {
            let hot: Vec<QubitTag> = hot.into_iter().filter(|&t| t < n).map(QubitTag).collect();
            let mut policy = LruPolicy::default();
            policy.begin(n, &hot);
            let mut naive = NaiveLru {
                hot: hot.iter().map(|q| q.0).collect(),
                ..NaiveLru::default()
            };

            for (now, &(tag, apply)) in trace.iter().enumerate() {
                let now = now as u64;
                let q = QubitTag(tag % n);
                let proposal = policy.on_access(q, now);
                let expected = naive.on_access(q.0, now);
                prop_assert_eq!(proposal.map(|v| v.0), expected);
                if let (Some(victim), true) = (proposal, apply) {
                    policy.applied(q, victim);
                    naive.applied(q.0, victim.0);
                }
            }
        }

        /// The incremental `FreqDecayPolicy` scores and proposals equal the
        /// naive recompute-everything model over random traces.
        #[test]
        fn freq_decay_policy_matches_the_naive_model(
            n in 4u32..60,
            hot in proptest::collection::hash_set(0u32..60, 1..6),
            trace in proptest::collection::vec((0u32..60, proptest::bool::ANY), 1..150),
        ) {
            let hot: Vec<QubitTag> = hot.into_iter().filter(|&t| t < n).map(QubitTag).collect();
            let mut policy = FreqDecayPolicy::default();
            policy.begin(n, &hot);
            let mut naive = NaiveFreqDecay {
                half_life: policy.half_life as f64,
                margin: policy.margin,
                score: HashMap::new(),
                last: HashMap::new(),
                hot: hot.iter().map(|q| q.0).collect(),
            };

            for (now, &(tag, apply)) in trace.iter().enumerate() {
                let now = now as u64;
                let q = QubitTag(tag % n);
                let proposal = policy.on_access(q, now);
                let expected = naive.on_access(q.0, now);
                prop_assert_eq!(proposal.map(|v| v.0), expected);
                if let (Some(victim), true) = (proposal, apply) {
                    policy.applied(q, victim);
                    naive.applied(q.0, victim.0);
                }
            }
        }

        /// The static policy is inert on any trace.
        #[test]
        fn static_policy_matches_the_pinned_hot_set(
            trace in proptest::collection::vec(0u32..40, 1..60),
        ) {
            let mut policy = StaticPolicy;
            policy.begin(40, &[QubitTag(0)]);
            for (now, &tag) in trace.iter().enumerate() {
                prop_assert_eq!(policy.on_access(QubitTag(tag), now as u64), None);
            }
        }
    }
}
