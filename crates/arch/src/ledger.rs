//! The per-bank checkout ledger.
//!
//! The paper's SAM invariant (Sec. IV-C-2, V-B) is strict: a bank holding `n`
//! data qubits owns `n + 1` cells (point) or `n + C` cells (line), with one
//! scan vacancy plus one extra vacancy per qubit currently checked out to the
//! CR. Nothing enforces that shape unless stores are restricted to qubits that
//! actually left *this* bank — a store of a foreign tag would consume the scan
//! vacancy and silently corrupt the accounting. [`CheckoutLedger`] is the
//! dense bit set each bank keeps of exactly which of its qubits are checked
//! out, so `store` can reject anything else with
//! [`LatticeError::QubitNotCheckedOut`](lsqca_lattice::LatticeError::QubitNotCheckedOut).

use lsqca_lattice::QubitTag;

/// Dense bit set of the qubits a bank has checked out to the CR.
///
/// Qubit tags are contiguous across the memory system, so membership is one
/// word-indexed bit probe; the capacity is fixed at construction to the bank's
/// own tag range and never grows (foreign tags simply read as "not checked
/// out").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckoutLedger {
    /// One bit per tag in `0..capacity`, packed 64 per word.
    words: Vec<u64>,
    /// Exact tag capacity; tags at or past it are rejected even when they
    /// fall inside the final partially-used word.
    capacity: usize,
    /// Number of bits currently set.
    count: usize,
}

impl CheckoutLedger {
    /// Creates a ledger covering tags `0..capacity`, all checked in.
    pub fn new(capacity: usize) -> Self {
        CheckoutLedger {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            count: 0,
        }
    }

    /// Number of tags the ledger covers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Extends the covered tag range to at least `capacity` (hot-set
    /// migration can demote a qubit whose tag is beyond the range the bank
    /// was built for). Shrinking is not supported; a smaller value is a no-op.
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.capacity {
            self.capacity = capacity;
            self.words.resize(capacity.div_ceil(64), 0);
        }
    }

    /// Number of qubits currently checked out.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True if no qubit is checked out.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn split(qubit: QubitTag) -> (usize, u64) {
        ((qubit.0 / 64) as usize, 1u64 << (qubit.0 % 64))
    }

    /// True if `qubit` is currently checked out of this bank. Tags outside the
    /// ledger's capacity are never checked out.
    pub fn is_checked_out(&self, qubit: QubitTag) -> bool {
        if qubit.0 as usize >= self.capacity {
            return false;
        }
        let (word, bit) = Self::split(qubit);
        self.words.get(word).is_some_and(|w| w & bit != 0)
    }

    /// Marks `qubit` as checked out. Returns `false` (and changes nothing) if
    /// it already was, or if the tag is outside the ledger's capacity.
    pub fn check_out(&mut self, qubit: QubitTag) -> bool {
        if qubit.0 as usize >= self.capacity {
            return false;
        }
        let (word, bit) = Self::split(qubit);
        match self.words.get_mut(word) {
            Some(w) if *w & bit == 0 => {
                *w |= bit;
                self.count += 1;
                true
            }
            _ => false,
        }
    }

    /// Marks `qubit` as checked back in. Returns `false` (and changes nothing)
    /// if it was not checked out.
    pub fn check_in(&mut self, qubit: QubitTag) -> bool {
        if qubit.0 as usize >= self.capacity {
            return false;
        }
        let (word, bit) = Self::split(qubit);
        match self.words.get_mut(word) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                self.count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Iterates over the checked-out tags in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = QubitTag> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| QubitTag(i as u32 * 64 + b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_out_and_in_round_trip() {
        let mut ledger = CheckoutLedger::new(100);
        assert!(ledger.is_empty());
        assert!(ledger.check_out(QubitTag(7)));
        assert!(ledger.check_out(QubitTag(64)));
        assert_eq!(ledger.count(), 2);
        assert!(ledger.is_checked_out(QubitTag(7)));
        assert!(!ledger.is_checked_out(QubitTag(8)));
        assert!(ledger.check_in(QubitTag(7)));
        assert!(!ledger.is_checked_out(QubitTag(7)));
        assert_eq!(ledger.count(), 1);
    }

    #[test]
    fn double_operations_are_rejected_without_corruption() {
        let mut ledger = CheckoutLedger::new(10);
        assert!(ledger.check_out(QubitTag(3)));
        assert!(!ledger.check_out(QubitTag(3)));
        assert_eq!(ledger.count(), 1);
        assert!(ledger.check_in(QubitTag(3)));
        assert!(!ledger.check_in(QubitTag(3)));
        assert_eq!(ledger.count(), 0);
    }

    #[test]
    fn foreign_tags_read_as_checked_in() {
        let mut ledger = CheckoutLedger::new(10);
        assert_eq!(ledger.capacity(), 10);
        assert!(!ledger.is_checked_out(QubitTag(1000)));
        assert!(!ledger.check_out(QubitTag(1000)));
        assert!(!ledger.check_in(QubitTag(1000)));
        // Tags inside the final partially-used word but past the capacity
        // are rejected too (regression: only the word index was checked, so
        // tag 63 slipped into a 10-tag ledger).
        assert!(!ledger.check_out(QubitTag(10)));
        assert!(!ledger.check_out(QubitTag(63)));
        assert!(!ledger.is_checked_out(QubitTag(63)));
        assert_eq!(ledger.count(), 0);
        // The last in-capacity tag works.
        assert!(ledger.check_out(QubitTag(9)));
        assert_eq!(ledger.count(), 1);
    }

    #[test]
    fn grow_extends_the_covered_range() {
        let mut ledger = CheckoutLedger::new(10);
        assert!(!ledger.check_out(QubitTag(70)));
        ledger.grow(100);
        assert_eq!(ledger.capacity(), 100);
        assert!(ledger.check_out(QubitTag(70)));
        assert!(ledger.is_checked_out(QubitTag(70)));
        // Growing never shrinks or disturbs existing state.
        ledger.grow(5);
        assert_eq!(ledger.capacity(), 100);
        assert!(ledger.is_checked_out(QubitTag(70)));
    }

    #[test]
    fn iter_yields_ascending_tags() {
        let mut ledger = CheckoutLedger::new(200);
        for tag in [130u32, 5, 63, 64] {
            ledger.check_out(QubitTag(tag));
        }
        let tags: Vec<u32> = ledger.iter().map(|q| q.0).collect();
        assert_eq!(tags, vec![5, 63, 64, 130]);
    }
}
