//! The line-SAM bank model (Sec. IV-C-3).
//!
//! A line SAM trades a little memory density for much lower access latency: a
//! whole **scan line** (one row's worth of vacant cells) sweeps vertically
//! through the data region, and the CR spans the full bank height so any cell of
//! the row facing the scan line can be transferred immediately. Loading a qubit
//! therefore costs only the vertical distance between the scan position and the
//! target row (worst case `0.5·√n` with the line starting in the middle), and
//! consecutive accesses to the *same* row are essentially free.
//!
//! The bank is modelled as `R + 1` storage rows of `C` cells: the `R·C`-cell data
//! region plus the scan line's own `C` cells. The `C` vacancies are initially
//! concentrated in the middle row and migrate as qubits are stored: the
//! locality-aware store (Sec. V-B) parks a returning qubit in the row with a
//! vacancy closest to the most recently accessed row, so co-accessed qubits end
//! up sharing a row and later multi-qubit operations become cheap.

use crate::ledger::CheckoutLedger;
use lsqca_lattice::{Beats, LatticeError, QubitTag};

/// A single line-SAM bank.
///
/// Qubit tags are dense (`0..num_qubits` across the whole memory system), so
/// the per-qubit row tables are plain `Vec`s indexed by `QubitTag::index()`
/// instead of hash maps: every row lookup on the simulator's hot path is one
/// array read.
///
/// Like the point bank, the line bank keeps a checkout ledger of exactly
/// which of its qubits are out in the CR, so `stored + checked_out` always
/// equals the bank's data-qubit count and [`LineSamBank::store`] rejects
/// foreign or never-loaded tags with [`LatticeError::QubitNotCheckedOut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineSamBank {
    /// Number of storage rows (data rows plus the scan line's row).
    storage_rows: u32,
    /// Number of columns (capacity per row).
    cols: u32,
    /// Row the scan position is currently adjacent to.
    scan_row: u32,
    /// Row each stored qubit currently occupies, indexed by tag; `None` for
    /// qubits that are checked out or belong to another bank.
    row_of: Vec<Option<u32>>,
    /// Number of qubits currently stored in the bank.
    stored: usize,
    /// Number of occupied cells per row.
    occupancy: Vec<u32>,
    /// Exact cell count charged to this bank (data region + scan line).
    cell_count: u64,
    /// Park returning qubits in the most recently accessed row (true) or in
    /// their original row (false).
    locality_aware_store: bool,
    /// Original home row of every qubit, indexed by tag; `None` for qubits
    /// that belong to another bank.
    home_row: Vec<Option<u32>>,
    /// Number of data qubits this bank was built for (`stored + checked_out`).
    num_qubits: usize,
    /// Exactly which of this bank's qubits are checked out to the CR.
    ledger: CheckoutLedger,
}

impl LineSamBank {
    /// Builds a bank holding `qubits` in a near-square data region (`R×C` with
    /// `C ∈ {R, R+1}`), filled row-major around an initially empty middle row
    /// (the scan line).
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty.
    pub fn new(qubits: &[QubitTag], locality_aware_store: bool) -> Self {
        assert!(
            !qubits.is_empty(),
            "a line-SAM bank needs at least one qubit"
        );
        let n = qubits.len() as u64;
        // Smallest R×C data region with C ∈ {R, R+1} and R·C ≥ n.
        let mut rows = (n as f64).sqrt().floor() as u32;
        if rows == 0 {
            rows = 1;
        }
        while (rows as u64) * (rows as u64 + 1) < n {
            rows += 1;
        }
        let cols = if (rows as u64) * (rows as u64) >= n {
            rows
        } else {
            rows + 1
        };
        let storage_rows = rows + 1;
        let scan_row = storage_rows / 2;

        let table_len = qubits.iter().map(|q| q.0 as usize + 1).max().unwrap_or(0);
        let mut row_of = vec![None; table_len];
        let mut occupancy = vec![0u32; storage_rows as usize];
        for (i, &q) in qubits.iter().enumerate() {
            let raw = (i as u32) / cols;
            // Skip the (initially empty) scan row in the middle of the bank.
            let row = if raw >= scan_row { raw + 1 } else { raw };
            row_of[q.0 as usize] = Some(row);
            occupancy[row as usize] += 1;
        }

        let bank = LineSamBank {
            storage_rows,
            cols,
            scan_row,
            home_row: row_of.clone(),
            row_of,
            stored: qubits.len(),
            occupancy,
            cell_count: rows as u64 * cols as u64 + cols as u64,
            locality_aware_store,
            num_qubits: qubits.len(),
            ledger: CheckoutLedger::new(table_len),
        };
        bank.debug_assert_invariants();
        bank
    }

    /// Debug-asserts the bank's accounting after every mutation: every data
    /// qubit is either stored or checked out, and the per-row occupancy sums
    /// to the stored count without exceeding any row's capacity.
    #[inline]
    fn debug_assert_invariants(&self) {
        debug_assert_eq!(
            self.stored + self.ledger.count(),
            self.num_qubits,
            "stored + checked_out must equal the bank's data-qubit count"
        );
        debug_assert_eq!(
            self.occupancy.iter().map(|&o| o as usize).sum::<usize>(),
            self.stored,
            "row occupancy must sum to the stored count"
        );
        debug_assert!(self.occupancy.iter().all(|&o| o <= self.cols));
        debug_assert!(
            self.ledger.iter().all(|q| self.row_of(q).is_none()),
            "a checked-out qubit cannot simultaneously occupy a row"
        );
    }

    /// Number of this bank's qubits currently checked out to the CR.
    pub fn checked_out_count(&self) -> usize {
        self.ledger.count()
    }

    /// True if `qubit` is currently checked out of this bank to the CR.
    pub fn is_checked_out(&self, qubit: QubitTag) -> bool {
        self.ledger.is_checked_out(qubit)
    }

    /// Exact number of cells charged to this bank (data region plus scan line).
    pub fn cell_count(&self) -> u64 {
        self.cell_count
    }

    /// The row the scan line starts adjacent to (the middle of the bank). The
    /// line-SAM CR spans the full bank height, so every storage row faces a
    /// port cell; this is the anchor row analogous to the point-SAM port.
    pub fn port_row(&self) -> u32 {
        self.storage_rows / 2
    }

    /// Bank height including the scan line; the CR column must span this height.
    pub fn total_height(&self) -> u32 {
        self.storage_rows
    }

    /// Number of qubits currently stored in the bank.
    pub fn stored_qubits(&self) -> usize {
        self.stored
    }

    /// True if `qubit` is currently stored in this bank.
    pub fn contains(&self, qubit: QubitTag) -> bool {
        self.row_of(qubit).is_some()
    }

    /// The row currently holding `qubit`.
    pub fn row_of(&self, qubit: QubitTag) -> Option<u32> {
        self.row_of.get(qubit.0 as usize).copied().flatten()
    }

    fn require_row(&self, qubit: QubitTag) -> Result<u32, LatticeError> {
        self.row_of(qubit)
            .ok_or(LatticeError::QubitNotPresent { qubit })
    }

    fn distance(&self, row: u32) -> Beats {
        Beats(self.scan_row.abs_diff(row) as u64)
    }

    /// Estimated load latency without mutating the bank state.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn peek_load(&self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let row = self.require_row(qubit)?;
        Ok(self.distance(row) + Beats(1))
    }

    /// Loads `qubit` out of the bank and returns the latency in beats: the
    /// vertical seek of the scan position plus one beat to transfer into the CR.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn load(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let row = self.require_row(qubit)?;
        let cost = self.distance(row) + Beats(1);
        self.row_of[qubit.0 as usize] = None;
        self.stored -= 1;
        self.occupancy[row as usize] -= 1;
        self.ledger.check_out(qubit);
        self.scan_row = row;
        self.debug_assert_invariants();
        Ok(cost)
    }

    /// Row chosen by the store policy: with locality awareness, the row with a
    /// vacancy closest to the current scan position; otherwise the qubit's home
    /// row (or the closest row with space if the home row is full).
    fn store_row(&self, qubit: QubitTag) -> Result<u32, LatticeError> {
        let preferred = if self.locality_aware_store {
            self.scan_row
        } else {
            self.home_row
                .get(qubit.0 as usize)
                .copied()
                .flatten()
                .ok_or(LatticeError::QubitNotPresent { qubit })?
        };
        (0..self.storage_rows)
            .filter(|&r| self.occupancy[r as usize] < self.cols)
            .min_by_key(|&r| r.abs_diff(preferred))
            .ok_or(LatticeError::GridFull)
    }

    /// Stores `qubit` back into the bank and returns the latency in beats.
    /// Only qubits recorded in the checkout ledger — i.e. previously loaded
    /// from *this* bank — are accepted: a foreign tag would inflate the bank
    /// beyond its data-qubit count and corrupt the row accounting.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::QubitAlreadyPlaced`] if the qubit never left.
    /// * [`LatticeError::QubitNotCheckedOut`] if the qubit was never loaded
    ///   from this bank (including foreign tags).
    pub fn store(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        if let Some(row) = self.row_of(qubit) {
            return Err(LatticeError::QubitAlreadyPlaced {
                qubit,
                at: lsqca_lattice::Coord::new(0, row),
            });
        }
        if !self.ledger.is_checked_out(qubit) {
            return Err(LatticeError::QubitNotCheckedOut { qubit });
        }
        let dest = self.store_row(qubit)?;
        let cost = self.distance(dest) + Beats(1);
        // Checked-out tags are always within the bank's own tag range, so the
        // dense row table needs no growth here.
        self.row_of[qubit.0 as usize] = Some(dest);
        self.stored += 1;
        self.occupancy[dest as usize] += 1;
        self.ledger.check_in(qubit);
        self.scan_row = dest;
        self.debug_assert_invariants();
        Ok(cost)
    }

    /// Moves the scan position next to `qubit`'s row for an in-memory
    /// single-qubit operation and returns the seek latency.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn in_memory_seek(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let row = self.require_row(qubit)?;
        let cost = self.distance(row);
        self.scan_row = row;
        Ok(cost)
    }

    /// Access cost for an in-memory two-qubit operation between a CR slot and
    /// `qubit`: the scan position seeks to the target row, which then provides
    /// the lattice-surgery path to the full-height CR. The qubit stays in place.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn in_memory_two_qubit_access(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        self.in_memory_seek(qubit)
    }

    /// Hot-set migration swap: extracts `outgoing` from its row (promotion
    /// into the conventional region) and parks `incoming` (the demoted qubit)
    /// in the row with a vacancy nearest the freed one, conserving the bank's
    /// row accounting. Returns the combined seek + transfer latency of both
    /// movements. Neither qubit touches the checkout ledger — migration moves
    /// *stored* qubits, never checked-out ones.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::QubitNotPresent`] if `outgoing` is not stored here.
    /// * [`LatticeError::QubitAlreadyPlaced`] if `incoming` already is.
    pub fn migrate_swap(
        &mut self,
        outgoing: QubitTag,
        incoming: QubitTag,
    ) -> Result<Beats, LatticeError> {
        let row = self.require_row(outgoing)?;
        if let Some(at) = self.row_of(incoming) {
            return Err(LatticeError::QubitAlreadyPlaced {
                qubit: incoming,
                at: lsqca_lattice::Coord::new(0, at),
            });
        }
        let out_cost = self.distance(row) + Beats(1);
        self.row_of[outgoing.0 as usize] = None;
        self.stored -= 1;
        self.occupancy[row as usize] -= 1;
        self.scan_row = row;
        // The freed slot guarantees a destination exists.
        let dest = (0..self.storage_rows)
            .filter(|&r| self.occupancy[r as usize] < self.cols)
            .min_by_key(|&r| r.abs_diff(row))
            .expect("the outgoing qubit freed a row slot");
        let in_cost = self.distance(dest) + Beats(1);
        // The demoted qubit may carry a tag beyond the range this bank was
        // built for; the dense per-tag tables grow to admit it.
        let table_len = incoming.0 as usize + 1;
        if table_len > self.row_of.len() {
            self.row_of.resize(table_len, None);
            self.home_row.resize(table_len, None);
        }
        self.ledger.grow(table_len);
        self.row_of[incoming.0 as usize] = Some(dest);
        self.stored += 1;
        self.occupancy[dest as usize] += 1;
        self.home_row[outgoing.0 as usize] = None;
        self.home_row[incoming.0 as usize] = Some(dest);
        self.scan_row = dest;
        self.debug_assert_invariants();
        Ok(out_cost + in_cost)
    }

    /// Applies an in-memory operation to a whole row at once (the line-SAM bulk
    /// Hadamard/phase of Fig. 12c): returns the seek latency to that row.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::OutOfBounds`] if the row index is invalid.
    pub fn seek_row(&mut self, row: u32) -> Result<Beats, LatticeError> {
        if row >= self.storage_rows {
            return Err(LatticeError::OutOfBounds {
                coord: lsqca_lattice::Coord::new(0, row),
                width: self.cols,
                height: self.storage_rows,
            });
        }
        let cost = self.distance(row);
        self.scan_row = row;
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qubits(n: u32) -> Vec<QubitTag> {
        (0..n).map(QubitTag).collect()
    }

    #[test]
    fn multiplier_bank_matches_the_paper_cell_count() {
        // 400 data qubits: 20×20 data region + a 20-cell scan line = 420 cells.
        let bank = LineSamBank::new(&qubits(400), true);
        assert_eq!(bank.cell_count(), 420);
        assert_eq!(bank.total_height(), 21);
        assert_eq!(bank.stored_qubits(), 400);
        // The scan line starts at the anchor (port) row in the middle.
        assert_eq!(bank.port_row(), 10);
        assert_eq!(bank.scan_row, bank.port_row());
    }

    #[test]
    fn non_square_counts_use_the_rectangular_shape() {
        // 30 qubits: 5×6 data region (C = R+1) + 6 scan cells = 36.
        let bank = LineSamBank::new(&qubits(30), true);
        assert_eq!(bank.cell_count(), 36);
        // 20 qubits: 4×5 + 5 = 25.
        let bank = LineSamBank::new(&qubits(20), true);
        assert_eq!(bank.cell_count(), 25);
    }

    #[test]
    fn load_latency_is_row_distance_plus_one() {
        let bank = LineSamBank::new(&qubits(100), true);
        // 10 data rows plus the scan row in the middle (row 5 of 11); qubit 0
        // sits in row 0, so its load costs 5 + 1.
        assert_eq!(bank.peek_load(QubitTag(0)).unwrap(), Beats(6));
        // A qubit just below the scan row costs the one-row seek plus transfer.
        assert_eq!(bank.row_of(QubitTag(51)), Some(6));
        assert_eq!(bank.peek_load(QubitTag(51)).unwrap(), Beats(2));
    }

    #[test]
    fn worst_case_load_is_half_sqrt_n() {
        let n = 400u32;
        let bank = LineSamBank::new(&qubits(n), true);
        let worst = (0..n)
            .map(|q| bank.peek_load(QubitTag(q)).unwrap())
            .max()
            .unwrap();
        // 0.5 * sqrt(400) = 10 (plus the one-beat transfer).
        assert_eq!(worst, Beats(11));
    }

    #[test]
    fn same_row_access_after_a_load_is_cheap() {
        let mut bank = LineSamBank::new(&qubits(100), true);
        // Load a qubit from row 0; the scan position follows it there.
        bank.load(QubitTag(3)).unwrap();
        // Its row neighbours are now one beat away.
        assert_eq!(bank.peek_load(QubitTag(4)).unwrap(), Beats(1));
        assert_eq!(bank.in_memory_seek(QubitTag(7)).unwrap(), Beats(0));
    }

    #[test]
    fn locality_aware_store_co_locates_with_the_last_access() {
        let mut bank = LineSamBank::new(&qubits(100), true);
        let q = QubitTag(0);
        let partner = QubitTag(95);
        let partner_row = bank.row_of(partner).unwrap();
        let home_row = bank.row_of(q).unwrap();
        bank.load(q).unwrap();
        // Free a cell in the partner's row, then touch the partner so the scan
        // position moves there.
        bank.load(QubitTag(99)).unwrap();
        bank.in_memory_seek(partner).unwrap();
        bank.store(q).unwrap();
        // The qubit is parked in the partner's row instead of returning home.
        let stored_row = bank.row_of(q).unwrap();
        assert_eq!(stored_row, partner_row);
        assert_ne!(stored_row, home_row);
        // A follow-up joint access is now nearly free.
        assert!(bank.peek_load(q).unwrap() <= Beats(2));
        bank.store(QubitTag(99)).unwrap();
        assert_eq!(bank.stored_qubits(), 100);
    }

    #[test]
    fn home_store_policy_returns_to_the_original_row() {
        let mut bank = LineSamBank::new(&qubits(99), false);
        let q = QubitTag(0);
        let home = bank.row_of(q).unwrap();
        bank.load(q).unwrap();
        bank.in_memory_seek(QubitTag(95)).unwrap();
        bank.store(q).unwrap();
        assert_eq!(bank.row_of(q), Some(home));
    }

    #[test]
    fn store_without_load_is_rejected() {
        let mut bank = LineSamBank::new(&qubits(10), true);
        assert!(matches!(
            bank.store(QubitTag(3)),
            Err(LatticeError::QubitAlreadyPlaced { .. })
        ));
        assert!(matches!(
            bank.load(QubitTag(99)),
            Err(LatticeError::QubitNotPresent { .. })
        ));
    }

    #[test]
    fn store_of_a_never_checked_out_qubit_is_rejected() {
        let mut bank = LineSamBank::new(&qubits(10), true);
        // A foreign tag that was never loaded from this bank used to be
        // silently absorbed into a row; now it is a typed ledger violation.
        assert!(matches!(
            bank.store(QubitTag(99)),
            Err(LatticeError::QubitNotCheckedOut {
                qubit: QubitTag(99)
            })
        ));
        assert_eq!(bank.stored_qubits(), 10);
        assert_eq!(bank.checked_out_count(), 0);
        // Same for the home-row store policy.
        let mut home = LineSamBank::new(&qubits(10), false);
        assert!(matches!(
            home.store(QubitTag(99)),
            Err(LatticeError::QubitNotCheckedOut { .. })
        ));
        // A legitimate round trip settles the ledger.
        bank.load(QubitTag(7)).unwrap();
        assert!(bank.is_checked_out(QubitTag(7)));
        assert_eq!(bank.checked_out_count(), 1);
        bank.store(QubitTag(7)).unwrap();
        assert!(!bank.is_checked_out(QubitTag(7)));
        assert!(bank.store(QubitTag(7)).is_err());
    }

    #[test]
    fn vacancies_migrate_as_qubits_are_stored_elsewhere() {
        let mut bank = LineSamBank::new(&qubits(16), true);
        // 16 qubits in a 4x4 data region around an empty middle row.
        let q0_row = bank.row_of(QubitTag(0)).unwrap();
        bank.load(QubitTag(0)).unwrap();
        bank.load(QubitTag(15)).unwrap();
        let far_row = bank.row_of(QubitTag(12)).unwrap();
        bank.in_memory_seek(QubitTag(12)).unwrap();
        bank.store(QubitTag(0)).unwrap();
        // Qubit 0 left its home row and joined (or neighboured) the far row.
        let new_row = bank.row_of(QubitTag(0)).unwrap();
        assert_ne!(new_row, q0_row);
        assert!(new_row.abs_diff(far_row) <= 1);
        bank.store(QubitTag(15)).unwrap();
        assert_eq!(bank.stored_qubits(), 16);
    }

    #[test]
    fn seek_row_bounds_are_checked() {
        let mut bank = LineSamBank::new(&qubits(16), true);
        assert!(bank.seek_row(3).is_ok());
        assert!(bank.seek_row(99).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_bank_panics() {
        let _ = LineSamBank::new(&[], true);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Load/store sequences conserve the stored-qubit count and never exceed
        /// the bank's row capacity; latencies stay within the bank height.
        #[test]
        fn load_store_sequences_preserve_occupancy(
            n in 4u32..200,
            accesses in proptest::collection::vec(0u32..200, 1..80)
        ) {
            let qubits: Vec<QubitTag> = (0..n).map(QubitTag).collect();
            let mut bank = LineSamBank::new(&qubits, true);
            let height = bank.total_height() as u64;
            for a in accesses {
                let q = QubitTag(a % n);
                if bank.contains(q) {
                    let cost = bank.load(q).unwrap();
                    prop_assert!(cost.as_u64() <= height + 1);
                    let cost = bank.store(q).unwrap();
                    prop_assert!(cost.as_u64() <= height + 1);
                }
                prop_assert_eq!(bank.stored_qubits(), n as usize);
                // No row ever exceeds its capacity.
                for r in 0..bank.total_height() {
                    prop_assert!(bank.occupancy[r as usize] <= bank.cols);
                }
            }
        }

        /// The dense `row_of` table is observationally identical to the seed's
        /// `HashMap<QubitTag, u32>` through random load/store/seek sequences.
        #[test]
        fn dense_row_table_matches_hashmap_semantics(
            n in 4u32..150,
            ops in proptest::collection::vec((0u32..200, 0u32..3), 1..100),
        ) {
            let qubits: Vec<QubitTag> = (0..n).map(QubitTag).collect();
            let mut bank = LineSamBank::new(&qubits, true);
            let mut mirror: std::collections::HashMap<QubitTag, u32> = qubits
                .iter()
                .map(|&q| (q, bank.row_of(q).unwrap()))
                .collect();
            for (tag, op) in ops {
                let q = QubitTag(tag);
                match op {
                    0 => {
                        if bank.load(q).is_ok() {
                            mirror.remove(&q);
                        }
                    }
                    1 => {
                        if bank.store(q).is_ok() {
                            mirror.insert(q, bank.row_of(q).unwrap());
                        }
                    }
                    _ => {
                        // Seeks move the scan line, never the stored rows.
                        let _ = bank.in_memory_seek(q);
                    }
                }
                prop_assert_eq!(bank.row_of(q), mirror.get(&q).copied());
                prop_assert_eq!(bank.contains(q), mirror.contains_key(&q));
                prop_assert_eq!(bank.stored_qubits(), mirror.len());
            }
            // Full-table agreement at the end, including never-touched tags.
            for tag in 0..200 {
                let q = QubitTag(tag);
                prop_assert_eq!(bank.row_of(q), mirror.get(&q).copied());
            }
        }

        /// The checkout ledger keeps `stored + checked_out == n` and per-row
        /// occupancy consistent across random load/store sequences that
        /// include foreign tags, and accepts a store exactly when the qubit
        /// is in the ledger.
        #[test]
        fn checkout_ledger_preserves_the_bank_invariants(
            n in 4u32..200,
            ops in proptest::collection::vec((0u32..250, proptest::bool::ANY), 1..120),
        ) {
            let qubits: Vec<QubitTag> = (0..n).map(QubitTag).collect();
            let mut bank = LineSamBank::new(&qubits, true);
            let mut out: std::collections::HashSet<QubitTag> =
                std::collections::HashSet::new();
            for (tag, load) in ops {
                let q = QubitTag(tag);
                if load {
                    let loaded = bank.load(q).is_ok();
                    prop_assert_eq!(loaded, tag < n && !out.contains(&q));
                    if loaded {
                        out.insert(q);
                    }
                } else {
                    let stored = bank.store(q);
                    prop_assert_eq!(stored.is_ok(), out.contains(&q));
                    if stored.is_ok() {
                        out.remove(&q);
                    } else if !bank.contains(q) {
                        prop_assert_eq!(
                            stored.unwrap_err(),
                            LatticeError::QubitNotCheckedOut { qubit: q }
                        );
                    }
                }
                prop_assert_eq!(bank.checked_out_count(), out.len());
                prop_assert_eq!(
                    bank.stored_qubits() + bank.checked_out_count(),
                    n as usize
                );
                let occupied: u32 = bank.occupancy.iter().sum();
                prop_assert_eq!(occupied as usize, bank.stored_qubits());
                for &q in &out {
                    prop_assert!(bank.is_checked_out(q));
                }
            }
        }
    }
}
