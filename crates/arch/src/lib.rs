//! Architecture models of the LSQCA paper.
//!
//! This crate turns the floorplan designs of Sec. IV–V into executable latency
//! and capacity models:
//!
//! * [`config`] — [`ArchConfig`]: which floorplan (point SAM,
//!   line SAM, conventional), how many SAM banks, how many magic-state factories,
//!   the hybrid-floorplan fraction `f`, and the CR size.
//! * [`ledger`] — the [`CheckoutLedger`]: the dense
//!   per-bank bit set of qubits currently checked out to the CR, backing the
//!   banks' store-side validation and `n + 1`-cell invariants.
//! * [`point`] — the point-SAM bank: a single scan cell, sliding-puzzle loads
//!   (`W + H` seek plus `6·min(W,H) + 5·|W−H|` transport), locality-aware stores
//!   into the vacant cell nearest the CR.
//! * [`dual`] — the **dual-port** point-SAM bank: a scan vacancy at a CR port
//!   on both the west and east edge, every access through the cheaper side,
//!   the two-vacancy move protocol always active.
//! * [`line`](mod@line) — the line-SAM bank: a scan line, loads costing the row distance,
//!   locality-aware stores into the most recently accessed row.
//! * [`memory`] — [`MemorySystem`]: hybrid floorplans (hot
//!   qubits in a conventional 1/2-density region, cold qubits distributed
//!   round-robin over SAM banks — mixed bank flavours via
//!   [`MemorySystem::from_spec`]), memory-density accounting, the load / store
//!   / in-memory access latencies the simulator consumes, the cross-bank
//!   checkout audit, and runtime hot-set migration
//!   ([`MemorySystem::migrate`]).
//! * [`floorplan`] — [`FloorplanSpec`] descriptors composing mixed banks, and
//!   the pluggable [`MigrationPolicy`] trait with its [`StaticPolicy`] /
//!   [`LruPolicy`] / [`FreqDecayPolicy`] implementations.
//! * [`msf`] — the magic-state factory model (one state per 15 beats per factory,
//!   buffer of `2 × factories`).
//!
//! # Example
//!
//! ```
//! use lsqca_arch::{ArchConfig, FloorplanKind, MemorySystem};
//! use lsqca_lattice::QubitTag;
//!
//! // 400 data qubits in a single line-SAM bank: ≈87% memory density.
//! let config = ArchConfig::new(FloorplanKind::LineSam { banks: 1 }, 1);
//! let memory = MemorySystem::new(&config, 400, &[]);
//! let density = memory.memory_density();
//! assert!(density > 0.85 && density < 0.90);
//! assert!(memory.is_resident(QubitTag(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dual;
pub mod floorplan;
pub mod ledger;
pub mod line;
pub mod memory;
pub mod msf;
pub mod point;

pub use config::{ArchConfig, FloorplanKind};
pub use dual::DualPointSamBank;
pub use floorplan::{
    BankKind, FloorplanSpec, FreqDecayPolicy, LruPolicy, MigrationPolicy, PolicyKind, StaticPolicy,
};
pub use ledger::CheckoutLedger;
pub use line::LineSamBank;
pub use memory::{BankPort, MemorySystem, Residence};
pub use msf::{MagicStateSupply, MsfConfig};
pub use point::PointSamBank;
