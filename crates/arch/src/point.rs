//! The point-SAM bank model (Sec. IV-C-2).
//!
//! A point SAM stores `n` logical qubits in `n + 1` cells: every cell holds data
//! except a single vacancy, the **scan cell**, which is walked around like the
//! hole of a sliding puzzle to extract and insert qubits. Loading a qubit costs
//!
//! * a **seek**: the scan cell walks to the target (`W + H` beats, one per cell), then
//! * a **transport**: the target is marched to the port next to the CR, costing
//!   6 beats per diagonal step and 5 per straight step (4 / 3 once a second
//!   vacancy exists because another qubit is currently checked out).
//!
//! Stores use the **locality-aware** policy by default: the returning qubit is
//! parked in the vacant cell closest to the port, so recently used qubits
//! migrate towards the CR and their next load is cheap (Sec. V-B). In-memory
//! operations only pay the seek (plus the gate itself), and an in-memory
//! two-qubit access drags the target next to the port without the final move
//! into a register cell (Sec. V-C).

use lsqca_lattice::{Beats, CellGrid, Coord, LatticeError, ProtocolLatencies, QubitTag};

/// A single point-SAM bank.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSamBank {
    grid: CellGrid,
    /// The cell adjacent to the CR through which qubits enter and leave.
    port: Coord,
    /// Current position of the scan vacancy (approximate head tracking).
    scan: Coord,
    /// Original home cell of every qubit, for the non-locality-aware store.
    /// Indexed densely by `QubitTag::index()`; `None` for tags held elsewhere.
    home: Vec<Option<Coord>>,
    /// Number of qubits currently checked out to the CR.
    checked_out: usize,
    latencies: ProtocolLatencies,
    /// Exact cell count charged to this bank (`data qubits + 1`).
    cell_count: u64,
    /// Store returning qubits near the port (true) or at their home cell (false).
    locality_aware_store: bool,
}

impl PointSamBank {
    /// Builds a bank holding `qubits`, placed row-major in a near-square grid,
    /// with the scan cell starting next to the port (the cell closest to the CR).
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty.
    pub fn new(qubits: &[QubitTag], locality_aware_store: bool) -> Self {
        assert!(
            !qubits.is_empty(),
            "a point-SAM bank needs at least one qubit"
        );
        let n = qubits.len() as u64;
        // Grid shape: near-square rectangle with room for the scan cell.
        let width = ((n + 1) as f64).sqrt().ceil() as u32;
        let height = ((n + 1) as f64 / width as f64).ceil() as u32;
        let mut grid = CellGrid::new(width, height);
        let port = Coord::new(0, height / 2);

        // Place qubits row-major, keeping the port cell free for the scan cell.
        let mut cells = (0..height)
            .flat_map(|y| (0..width).map(move |x| Coord::new(x, y)))
            .filter(|&c| c != port);
        let table_len = qubits.iter().map(|q| q.0 as usize + 1).max().unwrap_or(0);
        let mut home = vec![None; table_len];
        for &q in qubits {
            let cell = cells
                .next()
                .expect("grid sized to hold every qubit plus the scan cell");
            grid.place(q, cell)
                .expect("cells are distinct and in bounds");
            home[q.0 as usize] = Some(cell);
        }
        // Register the port as the grid's vacancy anchor so the per-store
        // `nearest_vacant(port)` query is an O(1) index read instead of an
        // O(cells) scan (the dominant cost of point-SAM simulation).
        grid.register_anchor(port)
            .expect("the port lies inside the bank grid");

        PointSamBank {
            grid,
            port,
            scan: port,
            home,
            checked_out: 0,
            latencies: ProtocolLatencies::paper(),
            cell_count: n + 1,
            locality_aware_store,
        }
    }

    /// Exact number of cells charged to this bank (data qubits + one scan cell).
    pub fn cell_count(&self) -> u64 {
        self.cell_count
    }

    /// The bank-local cell adjacent to the CR through which qubits enter and
    /// leave; also the anchor of the grid's vacancy index.
    pub fn port(&self) -> Coord {
        self.port
    }

    /// Number of qubits currently stored in the bank.
    pub fn stored_qubits(&self) -> usize {
        self.grid.occupied_count()
    }

    /// True if `qubit` is currently stored in this bank.
    pub fn contains(&self, qubit: QubitTag) -> bool {
        self.grid.contains(qubit)
    }

    /// True when a second vacancy exists (a qubit is checked out), enabling the
    /// cheaper move protocol of Fig. 11.
    fn has_second_vacancy(&self) -> bool {
        self.checked_out >= 1
    }

    fn position(&self, qubit: QubitTag) -> Result<Coord, LatticeError> {
        self.grid
            .position_of(qubit)
            .ok_or(LatticeError::QubitNotPresent { qubit })
    }

    /// Estimated load latency without mutating the bank state.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn peek_load(&self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        Ok(self.load_cost(pos))
    }

    fn load_cost(&self, pos: Coord) -> Beats {
        let seek = Beats(self.scan.manhattan_distance(pos) as u64);
        let transport = self.latencies.point_transport(
            pos.dx(self.port),
            pos.dy(self.port),
            self.has_second_vacancy(),
        );
        // One final move from the port into a CR register cell.
        seek + transport + self.latencies.move_step
    }

    /// Loads `qubit` out of the bank and returns the latency in beats.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn load(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        let cost = self.load_cost(pos);
        self.grid.remove(qubit)?;
        self.checked_out += 1;
        // The vacancy that carried the target ends up next to the port.
        self.scan = self.port;
        Ok(cost)
    }

    /// Stores `qubit` back into the bank and returns the latency in beats.
    ///
    /// With the locality-aware policy the qubit is parked in the vacant cell
    /// nearest the port; otherwise it walks back to its original home cell.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::GridFull`] if no vacant cell is available, or
    /// [`LatticeError::QubitAlreadyPlaced`] if the qubit never left.
    pub fn store(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let dest = if self.locality_aware_store {
            self.grid
                .nearest_vacant(self.port)
                .ok_or(LatticeError::GridFull)?
        } else {
            let home = self
                .home
                .get(qubit.0 as usize)
                .copied()
                .flatten()
                .ok_or(LatticeError::QubitNotPresent { qubit })?;
            if self.grid.is_vacant(home) {
                home
            } else {
                self.grid
                    .nearest_vacant(home)
                    .ok_or(LatticeError::GridFull)?
            }
        };
        let transport = self.latencies.point_transport(
            dest.dx(self.port),
            dest.dy(self.port),
            self.has_second_vacancy(),
        );
        self.grid.place(qubit, dest)?;
        self.checked_out = self.checked_out.saturating_sub(1);
        self.scan = self.port;
        Ok(transport + self.latencies.move_step)
    }

    /// Walks the scan cell next to `qubit` for an in-memory single-qubit
    /// operation and returns the seek latency (the gate latency itself is the
    /// caller's concern).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn in_memory_seek(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        let seek = Beats(self.scan.manhattan_distance(pos) as u64);
        self.scan = pos;
        Ok(seek)
    }

    /// Brings `qubit` adjacent to the port for an in-memory two-qubit operation
    /// with a CR slot (lattice surgery across the port). The qubit is relocated
    /// next to the port — this is what removes the last move of a load and the
    /// first move of a store (Sec. V-C).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn in_memory_two_qubit_access(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        let seek = Beats(self.scan.manhattan_distance(pos) as u64);
        let two = self.has_second_vacancy();
        // Destination: the vacant cell closest to the port (often the port's
        // neighbour); if the qubit already sits there the transport is free.
        self.grid.remove(qubit)?;
        let dest = self
            .grid
            .nearest_vacant(self.port)
            .expect("removing the qubit guarantees a vacancy");
        let transport = self
            .latencies
            .point_transport(pos.dx(dest), pos.dy(dest), two);
        self.grid.place(qubit, dest)?;
        self.scan = pos;
        Ok(seek + transport)
    }

    /// Manhattan distance from the port to the qubit's current cell, a proxy for
    /// how "hot" its placement currently is (used in tests and diagnostics).
    pub fn distance_from_port(&self, qubit: QubitTag) -> Option<u32> {
        self.grid
            .position_of(qubit)
            .map(|p| p.manhattan_distance(self.port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qubits(n: u32) -> Vec<QubitTag> {
        (0..n).map(QubitTag).collect()
    }

    #[test]
    fn cell_count_is_qubits_plus_one() {
        let bank = PointSamBank::new(&qubits(400), true);
        assert_eq!(bank.cell_count(), 401);
        assert_eq!(bank.stored_qubits(), 400);
        assert!(bank.contains(QubitTag(123)));
        assert!(!bank.contains(QubitTag(400)));
    }

    #[test]
    fn port_is_registered_as_the_vacancy_anchor() {
        let bank = PointSamBank::new(&qubits(100), true);
        assert_eq!(bank.grid.anchor(), Some(bank.port()));
        // The initial vacancy is the scan cell at the port itself.
        assert_eq!(bank.grid.nearest_vacant(bank.port()), Some(bank.port()));
    }

    #[test]
    fn load_latency_grows_with_distance() {
        let bank = PointSamBank::new(&qubits(100), true);
        // The qubit closest to the port loads much faster than the corner qubit.
        let near = (0..100)
            .map(|q| bank.peek_load(QubitTag(q)).unwrap())
            .min()
            .unwrap();
        let far = bank.peek_load(QubitTag(99)).unwrap();
        assert!(far > near, "far qubit should cost more ({far} <= {near})");
        assert!(near <= Beats(10));
    }

    #[test]
    fn worst_case_load_is_order_seven_sqrt_n() {
        let n = 400u32;
        let bank = PointSamBank::new(&qubits(n), true);
        let worst = (0..n)
            .map(|q| bank.peek_load(QubitTag(q)).unwrap())
            .max()
            .unwrap();
        let bound = 7.0 * (n as f64).sqrt();
        assert!(
            worst.as_f64() <= bound * 1.3,
            "worst-case load {worst} should be about 7*sqrt(n) = {bound:.0}"
        );
        assert!(worst.as_f64() >= bound * 0.4);
    }

    #[test]
    fn load_then_store_round_trip() {
        let mut bank = PointSamBank::new(&qubits(25), true);
        let load = bank.load(QubitTag(24)).unwrap();
        assert!(load > Beats(0));
        assert!(!bank.contains(QubitTag(24)));
        let store = bank.store(QubitTag(24)).unwrap();
        assert!(bank.contains(QubitTag(24)));
        // Locality-aware store parks next to the port, so it is much cheaper
        // than the original far-away load.
        assert!(store < load);
        // Loading it again is now cheap as well (temporal locality payoff).
        let reload = bank.peek_load(QubitTag(24)).unwrap();
        assert!(reload < load);
    }

    #[test]
    fn double_load_of_missing_qubit_errors() {
        let mut bank = PointSamBank::new(&qubits(9), true);
        bank.load(QubitTag(3)).unwrap();
        assert!(bank.load(QubitTag(3)).is_err());
        assert!(bank.peek_load(QubitTag(3)).is_err());
        assert!(bank.in_memory_seek(QubitTag(3)).is_err());
    }

    #[test]
    fn second_vacancy_makes_the_next_load_cheaper() {
        let mut with_vacancy = PointSamBank::new(&qubits(100), true);
        let baseline = PointSamBank::new(&qubits(100), true);
        // Check out one qubit to open a second vacancy.
        with_vacancy.load(QubitTag(55)).unwrap();
        let target = QubitTag(99);
        let faster = with_vacancy.peek_load(target).unwrap();
        let slower = baseline.peek_load(target).unwrap();
        assert!(
            faster < slower,
            "two vacancies should speed up transport ({faster} >= {slower})"
        );
    }

    #[test]
    fn home_store_policy_returns_to_the_original_cell() {
        let mut bank = PointSamBank::new(&qubits(36), false);
        let far = QubitTag(35);
        let before = bank.distance_from_port(far).unwrap();
        bank.load(far).unwrap();
        bank.store(far).unwrap();
        assert_eq!(bank.distance_from_port(far), Some(before));

        // With locality-aware store the qubit ends up closer to the port.
        let mut aware = PointSamBank::new(&qubits(36), true);
        aware.load(far).unwrap();
        aware.store(far).unwrap();
        assert!(aware.distance_from_port(far).unwrap() < before);
    }

    #[test]
    fn in_memory_seek_is_cheaper_than_a_load() {
        let mut bank = PointSamBank::new(&qubits(100), true);
        let target = QubitTag(99);
        let load_cost = bank.peek_load(target).unwrap();
        let seek = bank.in_memory_seek(target).unwrap();
        assert!(seek < load_cost);
        // Seeking the same qubit again is free because the scan cell is parked
        // right next to it.
        assert_eq!(bank.in_memory_seek(target).unwrap(), Beats(0));
    }

    #[test]
    fn in_memory_two_qubit_access_relocates_towards_the_port() {
        let mut bank = PointSamBank::new(&qubits(100), true);
        let target = QubitTag(99);
        let before = bank.distance_from_port(target).unwrap();
        let cost = bank.in_memory_two_qubit_access(target).unwrap();
        assert!(cost > Beats(0));
        let after = bank.distance_from_port(target).unwrap();
        assert!(after < before);
        assert!(bank.contains(target));
        // A repeat access is now much cheaper.
        let again = bank.in_memory_two_qubit_access(target).unwrap();
        assert!(again < cost);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_bank_panics() {
        let _ = PointSamBank::new(&[], true);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any sequence of load/store pairs keeps the bank consistent: the qubit
        /// count is conserved and latencies stay within the 7·√n-style bound.
        #[test]
        fn load_store_sequences_preserve_occupancy(
            n in 4u32..120,
            accesses in proptest::collection::vec(0u32..120, 1..60)
        ) {
            let qubits: Vec<QubitTag> = (0..n).map(QubitTag).collect();
            let mut bank = PointSamBank::new(&qubits, true);
            let bound = 16.0 * (n as f64).sqrt() + 32.0;
            for a in accesses {
                let q = QubitTag(a % n);
                if bank.contains(q) {
                    let cost = bank.load(q).unwrap();
                    prop_assert!(cost.as_f64() <= bound);
                    let cost = bank.store(q).unwrap();
                    prop_assert!(cost.as_f64() <= bound);
                }
                prop_assert_eq!(bank.stored_qubits(), n as usize);
            }
        }

        /// Membership through the dense home/position tables matches a shadow
        /// `HashSet` maintained with the legacy map semantics, across random
        /// load/store/in-memory sequences (including the home-store policy,
        /// which reads the dense `home` table).
        #[test]
        fn dense_membership_matches_set_semantics(
            n in 4u32..120,
            ops in proptest::collection::vec((0u32..150, 0u32..3), 1..80),
            locality in proptest::bool::ANY,
        ) {
            let qubits: Vec<QubitTag> = (0..n).map(QubitTag).collect();
            let mut bank = PointSamBank::new(&qubits, locality);
            let mut mirror: std::collections::HashSet<QubitTag> =
                qubits.iter().copied().collect();
            for (tag, op) in ops {
                let q = QubitTag(tag);
                match op {
                    0 => {
                        if bank.load(q).is_ok() {
                            mirror.remove(&q);
                        }
                    }
                    1 => {
                        if bank.store(q).is_ok() {
                            mirror.insert(q);
                        }
                    }
                    _ => { let _ = bank.in_memory_two_qubit_access(q); }
                }
                prop_assert_eq!(bank.contains(q), mirror.contains(&q));
                prop_assert_eq!(bank.stored_qubits(), mirror.len());
                prop_assert_eq!(bank.distance_from_port(q).is_some(), mirror.contains(&q));
            }
        }
    }
}
