//! The point-SAM bank model (Sec. IV-C-2).
//!
//! A point SAM stores `n` logical qubits in `n + 1` cells: every cell holds data
//! except a single vacancy, the **scan cell**, which is walked around like the
//! hole of a sliding puzzle to extract and insert qubits. Loading a qubit costs
//!
//! * a **seek**: the scan cell walks to the target (`W + H` beats, one per cell), then
//! * a **transport**: the target is marched to the port next to the CR, costing
//!   6 beats per diagonal step and 5 per straight step (4 / 3 once a second
//!   vacancy exists because another qubit is currently checked out).
//!
//! Stores use the **locality-aware** policy by default: the returning qubit is
//! parked in the vacant cell closest to the port, so recently used qubits
//! migrate towards the CR and their next load is cheap (Sec. V-B). In-memory
//! operations only pay the seek (plus the gate itself), and an in-memory
//! two-qubit access drags the target next to the port without the final move
//! into a register cell (Sec. V-C).

use crate::ledger::CheckoutLedger;
use lsqca_lattice::{Beats, CellGrid, Coord, LatticeError, ProtocolLatencies, QubitTag};

/// A single point-SAM bank.
///
/// The bank enforces the paper's `n + 1`-cell invariant through its checkout
/// ledger: at all times `stored + checked_out == n` and the grid holds exactly
/// `1 + checked_out` vacancies (the scan cell plus one per qubit currently in
/// the CR). [`PointSamBank::store`] therefore rejects any qubit that was not
/// checked out of *this* bank with
/// [`LatticeError::QubitNotCheckedOut`] instead of silently consuming the
/// scan vacancy.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSamBank {
    grid: CellGrid,
    /// The cell adjacent to the CR through which qubits enter and leave.
    port: Coord,
    /// Current position of the scan vacancy (approximate head tracking).
    scan: Coord,
    /// Original home cell of every qubit, for the non-locality-aware store.
    /// Indexed densely by `QubitTag::index()`; `None` for tags held elsewhere.
    home: Vec<Option<Coord>>,
    /// Exactly which of this bank's qubits are checked out to the CR.
    ledger: CheckoutLedger,
    latencies: ProtocolLatencies,
    /// Exact cell count charged to this bank (`data qubits + 1`).
    cell_count: u64,
    /// Store returning qubits near the port (true) or at their home cell (false).
    locality_aware_store: bool,
}

impl PointSamBank {
    /// Builds a bank holding `qubits`, placed row-major in a near-square grid,
    /// with the scan cell starting next to the port (the cell closest to the CR).
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty.
    pub fn new(qubits: &[QubitTag], locality_aware_store: bool) -> Self {
        assert!(
            !qubits.is_empty(),
            "a point-SAM bank needs at least one qubit"
        );
        let n = qubits.len() as u64;
        // Grid shape: near-square rectangle with room for the scan cell.
        let width = ((n + 1) as f64).sqrt().ceil() as u32;
        let height = ((n + 1) as f64 / width as f64).ceil() as u32;
        let mut grid = CellGrid::new(width, height);
        let port = Coord::new(0, height / 2);

        // Place qubits row-major, keeping the port cell free for the scan cell.
        let mut cells = (0..height)
            .flat_map(|y| (0..width).map(move |x| Coord::new(x, y)))
            .filter(|&c| c != port);
        let table_len = qubits.iter().map(|q| q.0 as usize + 1).max().unwrap_or(0);
        let mut home = vec![None; table_len];
        for &q in qubits {
            let cell = cells
                .next()
                .expect("grid sized to hold every qubit plus the scan cell");
            grid.place(q, cell)
                .expect("cells are distinct and in bounds");
            home[q.0 as usize] = Some(cell);
        }
        // Register the port as the grid's vacancy anchor so the per-store
        // `nearest_vacant(port)` query is an O(1) index read instead of an
        // O(cells) scan (the dominant cost of point-SAM simulation).
        grid.register_anchor(port)
            .expect("the port lies inside the bank grid");

        let bank = PointSamBank {
            grid,
            port,
            scan: port,
            home,
            ledger: CheckoutLedger::new(table_len),
            latencies: ProtocolLatencies::paper(),
            cell_count: n + 1,
            locality_aware_store,
        };
        bank.debug_assert_invariants();
        bank
    }

    /// Debug-asserts the paper's point-SAM shape after every mutation: `n`
    /// qubits in `n + 1` charged cells, split between stored and checked-out,
    /// with one scan vacancy plus one extra vacancy per checked-out qubit.
    /// The near-square grid rectangle may pad the charged area; the padding is
    /// constant, so any drift in the vacancy count is a real corruption.
    #[inline]
    fn debug_assert_invariants(&self) {
        let n = self.cell_count as usize - 1;
        debug_assert_eq!(
            self.stored_qubits() + self.ledger.count(),
            n,
            "stored + checked_out must equal the bank's data-qubit count"
        );
        let padding = self.grid.cell_count() as usize - (n + 1);
        debug_assert_eq!(
            self.grid.vacant_count(),
            1 + padding + self.ledger.count(),
            "a point bank holds one scan vacancy (plus grid padding) plus one vacancy per checkout"
        );
        debug_assert!(
            self.ledger.iter().all(|q| !self.grid.contains(q)),
            "a checked-out qubit cannot simultaneously occupy a cell"
        );
    }

    /// Exact number of cells charged to this bank (data qubits + one scan cell).
    pub fn cell_count(&self) -> u64 {
        self.cell_count
    }

    /// The bank-local cell adjacent to the CR through which qubits enter and
    /// leave; also the anchor of the grid's vacancy index.
    pub fn port(&self) -> Coord {
        self.port
    }

    /// Number of qubits currently stored in the bank.
    pub fn stored_qubits(&self) -> usize {
        self.grid.occupied_count()
    }

    /// True if `qubit` is currently stored in this bank.
    pub fn contains(&self, qubit: QubitTag) -> bool {
        self.grid.contains(qubit)
    }

    /// Number of this bank's qubits currently checked out to the CR.
    pub fn checked_out_count(&self) -> usize {
        self.ledger.count()
    }

    /// True if `qubit` is currently checked out of this bank to the CR.
    pub fn is_checked_out(&self, qubit: QubitTag) -> bool {
        self.ledger.is_checked_out(qubit)
    }

    /// True when a second vacancy exists (a qubit is checked out), enabling the
    /// cheaper move protocol of Fig. 11.
    fn has_second_vacancy(&self) -> bool {
        !self.ledger.is_empty()
    }

    fn position(&self, qubit: QubitTag) -> Result<Coord, LatticeError> {
        self.grid
            .position_of(qubit)
            .ok_or(LatticeError::QubitNotPresent { qubit })
    }

    /// Estimated load latency without mutating the bank state.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn peek_load(&self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        Ok(self.load_cost(pos))
    }

    fn load_cost(&self, pos: Coord) -> Beats {
        let seek = Beats(self.scan.manhattan_distance(pos) as u64);
        let transport = self.latencies.point_transport(
            pos.dx(self.port),
            pos.dy(self.port),
            self.has_second_vacancy(),
        );
        // One final move from the port into a CR register cell.
        seek + transport + self.latencies.move_step
    }

    /// Loads `qubit` out of the bank and returns the latency in beats.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn load(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        let cost = self.load_cost(pos);
        self.grid.remove(qubit)?;
        self.ledger.check_out(qubit);
        // The vacancy that carried the target ends up next to the port.
        self.scan = self.port;
        self.debug_assert_invariants();
        Ok(cost)
    }

    /// Stores `qubit` back into the bank and returns the latency in beats.
    ///
    /// With the locality-aware policy the qubit is parked in the vacant cell
    /// nearest the port; otherwise it walks back to its original home cell.
    /// Only qubits recorded in the checkout ledger — i.e. previously loaded
    /// from *this* bank — are accepted: anything else would consume the scan
    /// vacancy and break the `n + 1`-cell invariant.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::QubitAlreadyPlaced`] if the qubit never left.
    /// * [`LatticeError::QubitNotCheckedOut`] if the qubit was never loaded
    ///   from this bank (including foreign tags).
    pub fn store(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        if let Some(at) = self.grid.position_of(qubit) {
            return Err(LatticeError::QubitAlreadyPlaced { qubit, at });
        }
        if !self.ledger.is_checked_out(qubit) {
            return Err(LatticeError::QubitNotCheckedOut { qubit });
        }
        // The transport discount applies while the qubit is still out (its own
        // vacancy is the second one the move protocol of Fig. 11 exploits).
        let two = self.has_second_vacancy();
        let dest = if self.locality_aware_store {
            // Fused nearest-vacant + place: one pass over the grid tables and
            // a front-pop of the vacancy index's minimal ring.
            self.grid.place_at_nearest_vacancy(qubit, self.port)?
        } else {
            let home = self
                .home
                .get(qubit.0 as usize)
                .copied()
                .flatten()
                .ok_or(LatticeError::QubitNotPresent { qubit })?;
            if self.grid.is_vacant(home) {
                self.grid.place(qubit, home)?;
                home
            } else {
                self.grid.place_at_nearest_vacancy(qubit, home)?
            }
        };
        let transport = self
            .latencies
            .point_transport(dest.dx(self.port), dest.dy(self.port), two);
        self.ledger.check_in(qubit);
        self.scan = self.port;
        self.debug_assert_invariants();
        Ok(transport + self.latencies.move_step)
    }

    /// Walks the scan cell next to `qubit` for an in-memory single-qubit
    /// operation and returns the seek latency (the gate latency itself is the
    /// caller's concern).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn in_memory_seek(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        let seek = Beats(self.scan.manhattan_distance(pos) as u64);
        self.scan = pos;
        Ok(seek)
    }

    /// Brings `qubit` adjacent to the port for an in-memory two-qubit operation
    /// with a CR slot (lattice surgery across the port). The qubit is relocated
    /// next to the port — this is what removes the last move of a load and the
    /// first move of a store (Sec. V-C).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn in_memory_two_qubit_access(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let two = self.has_second_vacancy();
        // Destination: the vacant cell closest to the port (often the port's
        // neighbour, or the qubit's own cell once it has migrated there, in
        // which case the transport is free). The fused primitive replaces the
        // former remove → nearest_vacant → place triple walk with a single
        // pass over the cells, positions, and vacancy-ring tables.
        let (pos, dest) = self.grid.relocate_into_nearest_vacancy(qubit, self.port)?;
        let seek = Beats(self.scan.manhattan_distance(pos) as u64);
        let transport = self
            .latencies
            .point_transport(pos.dx(dest), pos.dy(dest), two);
        self.scan = pos;
        self.debug_assert_invariants();
        Ok(seek + transport)
    }

    /// Fused CX access: the load-cheaper-operand / access-other / store-back
    /// sequence of the paper's runtime CX optimization (Sec. VI-A) as one
    /// bank call. Observationally identical to `peek_load` ×2 + `load` +
    /// `in_memory_two_qubit_access` + `store` issued back to back (the
    /// executable spec kept in `Simulator::run_classified`), but the
    /// positions and load costs feeding the operand choice are computed once
    /// and reused for the load itself, and the intermediate checkout-state
    /// transitions stay inside a single call. Returns the `(load, access,
    /// store)` latencies.
    ///
    /// `control` and `target` must be distinct — callers route the degenerate
    /// self-CX through the unfused sequence so its mid-sequence error leaves
    /// the exact same partial state.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] (before any mutation) if
    /// either operand is not stored here, exactly as the first failing peek
    /// of the unfused sequence would.
    pub fn cx_access(
        &mut self,
        control: QubitTag,
        target: QubitTag,
    ) -> Result<(Beats, Beats, Beats), LatticeError> {
        debug_assert_ne!(control, target, "self-CX takes the unfused path");
        let pos_c = self.position(control)?;
        let pos_t = self.position(target)?;
        let cost_c = self.load_cost(pos_c);
        let cost_t = self.load_cost(pos_t);
        // Ties load the control, matching `peek_c <= peek_t` in the spec.
        let (loaded, other, load) = if cost_c <= cost_t {
            (control, target, cost_c)
        } else {
            (target, control, cost_t)
        };
        // load(loaded), with the cost already in hand.
        self.grid.remove(loaded)?;
        self.ledger.check_out(loaded);
        self.scan = self.port;
        // in_memory_two_qubit_access(other): the loaded qubit's vacancy is
        // the second one the cheaper move protocol exploits.
        let two = self.has_second_vacancy();
        let (pos, dest) = self.grid.relocate_into_nearest_vacancy(other, self.port)?;
        let seek = Beats(self.scan.manhattan_distance(pos) as u64);
        let access = seek
            + self
                .latencies
                .point_transport(pos.dx(dest), pos.dy(dest), two);
        self.scan = pos;
        // store(loaded): it is provably absent from the grid and checked out,
        // so the spec's guard errors cannot fire.
        let two_store = self.has_second_vacancy();
        let dest_store = if self.locality_aware_store {
            self.grid.place_at_nearest_vacancy(loaded, self.port)?
        } else {
            let home = self
                .home
                .get(loaded.0 as usize)
                .copied()
                .flatten()
                .ok_or(LatticeError::QubitNotPresent { qubit: loaded })?;
            if self.grid.is_vacant(home) {
                self.grid.place(loaded, home)?;
                home
            } else {
                self.grid.place_at_nearest_vacancy(loaded, home)?
            }
        };
        let store = self.latencies.point_transport(
            dest_store.dx(self.port),
            dest_store.dy(self.port),
            two_store,
        ) + self.latencies.move_step;
        self.ledger.check_in(loaded);
        self.scan = self.port;
        self.debug_assert_invariants();
        Ok((load, access, store))
    }

    /// Manhattan distance from the port to the qubit's current cell, a proxy for
    /// how "hot" its placement currently is (used in tests and diagnostics).
    pub fn distance_from_port(&self, qubit: QubitTag) -> Option<u32> {
        self.grid
            .position_of(qubit)
            .map(|p| p.manhattan_distance(self.port))
    }

    /// Hot-set migration swap: extracts `outgoing` from the bank (it is being
    /// promoted into the conventional region) and parks `incoming` (the
    /// demoted qubit walking in through the port) at the vacancy nearest the
    /// port, in one balanced operation that conserves the bank's
    /// `n + 1`-cell shape. Returns the combined movement latency: the
    /// outgoing qubit's full load cost plus the incoming qubit's
    /// store-equivalent transport. Neither qubit touches the checkout ledger
    /// — migration moves *stored* qubits, never checked-out ones.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::QubitNotPresent`] if `outgoing` is not stored here.
    /// * [`LatticeError::QubitAlreadyPlaced`] if `incoming` already is.
    pub fn migrate_swap(
        &mut self,
        outgoing: QubitTag,
        incoming: QubitTag,
    ) -> Result<Beats, LatticeError> {
        let pos = self.position(outgoing)?;
        if let Some(at) = self.grid.position_of(incoming) {
            return Err(LatticeError::QubitAlreadyPlaced {
                qubit: incoming,
                at,
            });
        }
        let out_cost = self.load_cost(pos);
        self.grid.remove(outgoing)?;
        // The demoted qubit may carry a tag beyond the range this bank was
        // built for; the dense per-tag tables grow to admit it.
        let table_len = incoming.0 as usize + 1;
        if table_len > self.home.len() {
            self.home.resize(table_len, None);
        }
        self.ledger.grow(table_len);
        let two = self.has_second_vacancy();
        let dest = self.grid.place_at_nearest_vacancy(incoming, self.port)?;
        let in_cost = self
            .latencies
            .point_transport(dest.dx(self.port), dest.dy(self.port), two)
            + self.latencies.move_step;
        self.home[outgoing.0 as usize] = None;
        self.home[incoming.0 as usize] = Some(dest);
        self.scan = self.port;
        self.debug_assert_invariants();
        Ok(out_cost + in_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qubits(n: u32) -> Vec<QubitTag> {
        (0..n).map(QubitTag).collect()
    }

    #[test]
    fn cell_count_is_qubits_plus_one() {
        let bank = PointSamBank::new(&qubits(400), true);
        assert_eq!(bank.cell_count(), 401);
        assert_eq!(bank.stored_qubits(), 400);
        assert!(bank.contains(QubitTag(123)));
        assert!(!bank.contains(QubitTag(400)));
    }

    #[test]
    fn port_is_registered_as_the_vacancy_anchor() {
        let bank = PointSamBank::new(&qubits(100), true);
        assert_eq!(bank.grid.anchor(), Some(bank.port()));
        // The initial vacancy is the scan cell at the port itself.
        assert_eq!(bank.grid.nearest_vacant(bank.port()), Some(bank.port()));
    }

    #[test]
    fn load_latency_grows_with_distance() {
        let bank = PointSamBank::new(&qubits(100), true);
        // The qubit closest to the port loads much faster than the corner qubit.
        let near = (0..100)
            .map(|q| bank.peek_load(QubitTag(q)).unwrap())
            .min()
            .unwrap();
        let far = bank.peek_load(QubitTag(99)).unwrap();
        assert!(far > near, "far qubit should cost more ({far} <= {near})");
        assert!(near <= Beats(10));
    }

    #[test]
    fn worst_case_load_is_order_seven_sqrt_n() {
        let n = 400u32;
        let bank = PointSamBank::new(&qubits(n), true);
        let worst = (0..n)
            .map(|q| bank.peek_load(QubitTag(q)).unwrap())
            .max()
            .unwrap();
        let bound = 7.0 * (n as f64).sqrt();
        assert!(
            worst.as_f64() <= bound * 1.3,
            "worst-case load {worst} should be about 7*sqrt(n) = {bound:.0}"
        );
        assert!(worst.as_f64() >= bound * 0.4);
    }

    #[test]
    fn load_then_store_round_trip() {
        let mut bank = PointSamBank::new(&qubits(25), true);
        let load = bank.load(QubitTag(24)).unwrap();
        assert!(load > Beats(0));
        assert!(!bank.contains(QubitTag(24)));
        let store = bank.store(QubitTag(24)).unwrap();
        assert!(bank.contains(QubitTag(24)));
        // Locality-aware store parks next to the port, so it is much cheaper
        // than the original far-away load.
        assert!(store < load);
        // Loading it again is now cheap as well (temporal locality payoff).
        let reload = bank.peek_load(QubitTag(24)).unwrap();
        assert!(reload < load);
    }

    #[test]
    fn double_load_of_missing_qubit_errors() {
        let mut bank = PointSamBank::new(&qubits(9), true);
        bank.load(QubitTag(3)).unwrap();
        assert!(bank.load(QubitTag(3)).is_err());
        assert!(bank.peek_load(QubitTag(3)).is_err());
        assert!(bank.in_memory_seek(QubitTag(3)).is_err());
    }

    #[test]
    fn second_vacancy_makes_the_next_load_cheaper() {
        let mut with_vacancy = PointSamBank::new(&qubits(100), true);
        let baseline = PointSamBank::new(&qubits(100), true);
        // Check out one qubit to open a second vacancy.
        with_vacancy.load(QubitTag(55)).unwrap();
        let target = QubitTag(99);
        let faster = with_vacancy.peek_load(target).unwrap();
        let slower = baseline.peek_load(target).unwrap();
        assert!(
            faster < slower,
            "two vacancies should speed up transport ({faster} >= {slower})"
        );
    }

    #[test]
    fn home_store_policy_returns_to_the_original_cell() {
        let mut bank = PointSamBank::new(&qubits(36), false);
        let far = QubitTag(35);
        let before = bank.distance_from_port(far).unwrap();
        bank.load(far).unwrap();
        bank.store(far).unwrap();
        assert_eq!(bank.distance_from_port(far), Some(before));

        // With locality-aware store the qubit ends up closer to the port.
        let mut aware = PointSamBank::new(&qubits(36), true);
        aware.load(far).unwrap();
        aware.store(far).unwrap();
        assert!(aware.distance_from_port(far).unwrap() < before);
    }

    #[test]
    fn in_memory_seek_is_cheaper_than_a_load() {
        let mut bank = PointSamBank::new(&qubits(100), true);
        let target = QubitTag(99);
        let load_cost = bank.peek_load(target).unwrap();
        let seek = bank.in_memory_seek(target).unwrap();
        assert!(seek < load_cost);
        // Seeking the same qubit again is free because the scan cell is parked
        // right next to it.
        assert_eq!(bank.in_memory_seek(target).unwrap(), Beats(0));
    }

    #[test]
    fn in_memory_two_qubit_access_relocates_towards_the_port() {
        let mut bank = PointSamBank::new(&qubits(100), true);
        let target = QubitTag(99);
        let before = bank.distance_from_port(target).unwrap();
        let cost = bank.in_memory_two_qubit_access(target).unwrap();
        assert!(cost > Beats(0));
        let after = bank.distance_from_port(target).unwrap();
        assert!(after < before);
        assert!(bank.contains(target));
        // A repeat access is now much cheaper.
        let again = bank.in_memory_two_qubit_access(target).unwrap();
        assert!(again < cost);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_bank_panics() {
        let _ = PointSamBank::new(&[], true);
    }

    #[test]
    fn store_of_a_never_checked_out_qubit_is_rejected() {
        let mut bank = PointSamBank::new(&qubits(9), true);
        // A foreign tag that was never part of this bank.
        assert!(matches!(
            bank.store(QubitTag(100)),
            Err(LatticeError::QubitNotCheckedOut {
                qubit: QubitTag(100)
            })
        ));
        // The bank's own qubit that never left is "already placed", not a
        // ledger violation.
        assert!(matches!(
            bank.store(QubitTag(3)),
            Err(LatticeError::QubitAlreadyPlaced { .. })
        ));
        // Neither rejection consumed the scan vacancy or moved anything.
        assert_eq!(bank.stored_qubits(), 9);
        assert_eq!(bank.checked_out_count(), 0);
        // The same applies to the non-locality-aware store policy.
        let mut home = PointSamBank::new(&qubits(9), false);
        assert!(matches!(
            home.store(QubitTag(100)),
            Err(LatticeError::QubitNotCheckedOut { .. })
        ));
        // A legitimate round trip still works and settles the ledger.
        let mut bank = PointSamBank::new(&qubits(9), true);
        bank.load(QubitTag(4)).unwrap();
        assert!(bank.is_checked_out(QubitTag(4)));
        assert_eq!(bank.checked_out_count(), 1);
        bank.store(QubitTag(4)).unwrap();
        assert!(!bank.is_checked_out(QubitTag(4)));
        assert_eq!(bank.checked_out_count(), 0);
        // Storing it twice is rejected the second time.
        bank.load(QubitTag(4)).unwrap();
        bank.store(QubitTag(4)).unwrap();
        assert!(bank.store(QubitTag(4)).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any sequence of load/store pairs keeps the bank consistent: the qubit
        /// count is conserved and latencies stay within the 7·√n-style bound.
        #[test]
        fn load_store_sequences_preserve_occupancy(
            n in 4u32..120,
            accesses in proptest::collection::vec(0u32..120, 1..60)
        ) {
            let qubits: Vec<QubitTag> = (0..n).map(QubitTag).collect();
            let mut bank = PointSamBank::new(&qubits, true);
            let bound = 16.0 * (n as f64).sqrt() + 32.0;
            for a in accesses {
                let q = QubitTag(a % n);
                if bank.contains(q) {
                    let cost = bank.load(q).unwrap();
                    prop_assert!(cost.as_f64() <= bound);
                    let cost = bank.store(q).unwrap();
                    prop_assert!(cost.as_f64() <= bound);
                }
                prop_assert_eq!(bank.stored_qubits(), n as usize);
            }
        }

        /// Membership through the dense home/position tables matches a shadow
        /// `HashSet` maintained with the legacy map semantics, across random
        /// load/store/in-memory sequences (including the home-store policy,
        /// which reads the dense `home` table).
        #[test]
        fn dense_membership_matches_set_semantics(
            n in 4u32..120,
            ops in proptest::collection::vec((0u32..150, 0u32..3), 1..80),
            locality in proptest::bool::ANY,
        ) {
            let qubits: Vec<QubitTag> = (0..n).map(QubitTag).collect();
            let mut bank = PointSamBank::new(&qubits, locality);
            let mut mirror: std::collections::HashSet<QubitTag> =
                qubits.iter().copied().collect();
            for (tag, op) in ops {
                let q = QubitTag(tag);
                match op {
                    0 => {
                        if bank.load(q).is_ok() {
                            mirror.remove(&q);
                        }
                    }
                    1 => {
                        if bank.store(q).is_ok() {
                            mirror.insert(q);
                        }
                    }
                    _ => { let _ = bank.in_memory_two_qubit_access(q); }
                }
                prop_assert_eq!(bank.contains(q), mirror.contains(&q));
                prop_assert_eq!(bank.stored_qubits(), mirror.len());
                prop_assert_eq!(bank.distance_from_port(q).is_some(), mirror.contains(&q));
            }
        }

        /// The checkout ledger enforces the paper's point-SAM shape across
        /// random load/store/in-memory sequences that include foreign tags:
        /// `stored + checked_out == n` always, the grid holds exactly one scan
        /// vacancy (plus constant grid padding) per checkout beyond the first,
        /// and a store is accepted exactly when the ledger has the qubit.
        #[test]
        fn checkout_ledger_preserves_the_bank_invariants(
            n in 4u32..120,
            ops in proptest::collection::vec((0u32..150, 0u32..3), 1..100),
            locality in proptest::bool::ANY,
        ) {
            let qubits: Vec<QubitTag> = (0..n).map(QubitTag).collect();
            let mut bank = PointSamBank::new(&qubits, locality);
            let padding = bank.grid.cell_count() as usize - bank.cell_count() as usize;
            let mut out: std::collections::HashSet<QubitTag> =
                std::collections::HashSet::new();
            for (tag, op) in ops {
                let q = QubitTag(tag);
                match op {
                    0 => {
                        let loaded = bank.load(q).is_ok();
                        prop_assert_eq!(loaded, tag < n && !out.contains(&q));
                        if loaded {
                            out.insert(q);
                        }
                    }
                    1 => {
                        let stored = bank.store(q);
                        // Accepted exactly when this bank checked the qubit out.
                        prop_assert_eq!(stored.is_ok(), out.contains(&q));
                        if stored.is_ok() {
                            out.remove(&q);
                        } else if !bank.contains(q) {
                            // Foreign/never-loaded tags get the typed error.
                            prop_assert_eq!(
                                stored.unwrap_err(),
                                LatticeError::QubitNotCheckedOut { qubit: q }
                            );
                        }
                    }
                    _ => {
                        let accessed = bank.in_memory_two_qubit_access(q).is_ok();
                        prop_assert_eq!(accessed, tag < n && !out.contains(&q));
                    }
                }
                // The paper's invariant, after every operation.
                prop_assert_eq!(bank.checked_out_count(), out.len());
                prop_assert_eq!(
                    bank.stored_qubits() + bank.checked_out_count(),
                    n as usize
                );
                prop_assert_eq!(
                    bank.grid.vacant_count(),
                    1 + padding + bank.checked_out_count()
                );
                for &q in &out {
                    prop_assert!(bank.is_checked_out(q));
                }
            }
        }
    }
}
