//! The memory system: hybrid floorplans, bank placement, density accounting.
//!
//! [`MemorySystem`] is what the simulator talks to. It owns:
//!
//! * an optional **conventional region** holding the "hot" qubits of a hybrid
//!   floorplan (Sec. V-D / VI-C) at 50% density with zero access latency, and
//! * zero or more **SAM banks** (point, dual-port point, or line — mixed
//!   flavours are allowed via [`MemorySystem::from_spec`]) holding the
//!   remaining qubits, distributed round-robin over the banks as in the
//!   paper's evaluation, plus
//! * the **CR** cell accounting, and
//! * the **memory-level checkout audit**: a record of which bank every
//!   checked-out qubit left, so a store that would land in a *different* bank
//!   (possible once hot-set migration mutates residences at runtime) is a
//!   typed [`LatticeError::CrossBankCheckout`] instead of silent scan-vacancy
//!   corruption.
//!
//! Memory density is `application qubits / (conventional cells + SAM cells + CR
//! cells)`, excluding MSFs, exactly as defined in Sec. VI-A.

use crate::config::{ArchConfig, FloorplanKind};
use crate::dual::DualPointSamBank;
use crate::floorplan::{BankKind, FloorplanSpec};
use crate::line::LineSamBank;
use crate::point::PointSamBank;
use lsqca_lattice::{Beats, LatticeError, QubitTag};
use std::fmt;

/// Where a qubit lives in the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Residence {
    /// The qubit is pinned in the conventional (unit-latency) region.
    Conventional,
    /// The qubit is stored in the SAM bank with this index.
    SamBank(usize),
}

/// The CR-facing port(s) of one SAM bank, in bank-local coordinates.
///
/// Point-SAM banks register their port(s) as the anchor(s) of their grid's
/// vacancy-ring sets at construction; line-SAM banks expose the anchor row
/// their scan line starts at (the CR column spans the full bank height).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankPort {
    /// A point-SAM port: the single cell adjacent to the CR.
    Cell(lsqca_lattice::Coord),
    /// A dual-port point-SAM bank's two port cells (west, east).
    Cells(lsqca_lattice::Coord, lsqca_lattice::Coord),
    /// A line-SAM port: the anchor row facing the full-height CR column.
    Row(u32),
}

/// One SAM bank of any flavour.
#[derive(Debug, Clone, PartialEq)]
enum Bank {
    Point(PointSamBank),
    Dual(DualPointSamBank),
    Line(LineSamBank),
}

impl Bank {
    fn build(kind: BankKind, qubits: &[QubitTag], locality_aware_store: bool) -> Bank {
        match kind {
            BankKind::PointSam => Bank::Point(PointSamBank::new(qubits, locality_aware_store)),
            BankKind::DualPointSam => {
                Bank::Dual(DualPointSamBank::new(qubits, locality_aware_store))
            }
            BankKind::LineSam => Bank::Line(LineSamBank::new(qubits, locality_aware_store)),
        }
    }

    fn cell_count(&self) -> u64 {
        match self {
            Bank::Point(b) => b.cell_count(),
            Bank::Dual(b) => b.cell_count(),
            Bank::Line(b) => b.cell_count(),
        }
    }

    fn total_height(&self) -> u32 {
        match self {
            Bank::Point(_) | Bank::Dual(_) => 3,
            Bank::Line(b) => b.total_height(),
        }
    }

    fn contains(&self, q: QubitTag) -> bool {
        match self {
            Bank::Point(b) => b.contains(q),
            Bank::Dual(b) => b.contains(q),
            Bank::Line(b) => b.contains(q),
        }
    }

    fn peek_load(&self, q: QubitTag) -> Result<Beats, LatticeError> {
        match self {
            Bank::Point(b) => b.peek_load(q),
            Bank::Dual(b) => b.peek_load(q),
            Bank::Line(b) => b.peek_load(q),
        }
    }

    fn load(&mut self, q: QubitTag) -> Result<Beats, LatticeError> {
        match self {
            Bank::Point(b) => b.load(q),
            Bank::Dual(b) => b.load(q),
            Bank::Line(b) => b.load(q),
        }
    }

    fn store(&mut self, q: QubitTag) -> Result<Beats, LatticeError> {
        match self {
            Bank::Point(b) => b.store(q),
            Bank::Dual(b) => b.store(q),
            Bank::Line(b) => b.store(q),
        }
    }

    fn in_memory_seek(&mut self, q: QubitTag) -> Result<Beats, LatticeError> {
        match self {
            Bank::Point(b) => b.in_memory_seek(q),
            Bank::Dual(b) => b.in_memory_seek(q),
            Bank::Line(b) => b.in_memory_seek(q),
        }
    }

    fn in_memory_two_qubit_access(&mut self, q: QubitTag) -> Result<Beats, LatticeError> {
        match self {
            Bank::Point(b) => b.in_memory_two_qubit_access(q),
            Bank::Dual(b) => b.in_memory_two_qubit_access(q),
            Bank::Line(b) => b.in_memory_two_qubit_access(q),
        }
    }

    fn migrate_swap(
        &mut self,
        outgoing: QubitTag,
        incoming: QubitTag,
    ) -> Result<Beats, LatticeError> {
        match self {
            Bank::Point(b) => b.migrate_swap(outgoing, incoming),
            Bank::Dual(b) => b.migrate_swap(outgoing, incoming),
            Bank::Line(b) => b.migrate_swap(outgoing, incoming),
        }
    }

    fn checked_out_count(&self) -> usize {
        match self {
            Bank::Point(b) => b.checked_out_count(),
            Bank::Dual(b) => b.checked_out_count(),
            Bank::Line(b) => b.checked_out_count(),
        }
    }
}

/// The complete memory system for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    /// Human-readable floorplan label (the `FloorplanKind` label for uniform
    /// systems, the [`FloorplanSpec`] label for mixed ones).
    label: String,
    cr_slots: u32,
    /// Residence per qubit tag, indexed directly by `QubitTag::index()`.
    /// Tags are contiguous `0..num_qubits`, so a dense table replaces the
    /// former `HashMap<QubitTag, Residence>` and turns every lookup on the
    /// simulator's hot path into one bounds-checked array read. Hot-set
    /// migration rewrites entries at runtime via [`MemorySystem::migrate`].
    residence: Vec<Residence>,
    banks: Vec<Bank>,
    conventional_qubits: u64,
    num_qubits: u32,
    /// Memory-level checkout audit: for every qubit currently checked out to
    /// the CR, the index of the bank it left. Cross-checked against the
    /// residence table on every load/store so a migrated residence can never
    /// silently redirect a store into a foreign bank.
    out_of: Vec<Option<u32>>,
}

impl MemorySystem {
    /// Builds the memory system for `num_qubits` data qubits from a uniform
    /// [`ArchConfig`] floorplan.
    ///
    /// `hot_qubits` lists the qubits pinned into the conventional region of a
    /// hybrid floorplan (ignored duplicates and out-of-range tags are dropped).
    /// With [`FloorplanKind::Conventional`] every qubit is treated as hot
    /// regardless of the list. The remaining qubits are distributed round-robin
    /// over the configured number of SAM banks.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    pub fn new(config: &ArchConfig, num_qubits: u32, hot_qubits: &[QubitTag]) -> Self {
        let kind = match config.floorplan {
            FloorplanKind::PointSam { .. } => Some(BankKind::PointSam),
            FloorplanKind::DualPointSam { .. } => Some(BankKind::DualPointSam),
            FloorplanKind::LineSam { .. } => Some(BankKind::LineSam),
            FloorplanKind::Conventional => None,
        };
        let spec = FloorplanSpec {
            banks: match kind {
                Some(kind) => vec![kind; config.floorplan.bank_count() as usize],
                None => Vec::new(),
            },
            cr_slots: config.cr_slots,
            locality_aware_store: config.locality_aware_store,
        };
        Self::build(config.floorplan.label(), &spec, num_qubits, hot_qubits)
    }

    /// Builds the memory system from a [`FloorplanSpec`], which may compose
    /// banks of *different* flavours (e.g. a fast dual-port point bank backed
    /// by a dense line bank). An empty bank list is the conventional
    /// baseline: every qubit is hot.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    pub fn from_spec(spec: &FloorplanSpec, num_qubits: u32, hot_qubits: &[QubitTag]) -> Self {
        Self::build(spec.label(), spec, num_qubits, hot_qubits)
    }

    fn build(
        label: String,
        spec: &FloorplanSpec,
        num_qubits: u32,
        hot_qubits: &[QubitTag],
    ) -> Self {
        assert!(num_qubits > 0, "the memory system needs at least one qubit");

        // Dense hot-set membership: tags are contiguous, so a bit per tag
        // replaces the former `HashSet` dedup pass.
        let all_hot = spec.banks.is_empty();
        let mut is_hot = vec![all_hot; num_qubits as usize];
        let mut hot_count: u64 = 0;
        if all_hot {
            hot_count = num_qubits as u64;
        } else {
            for &q in hot_qubits {
                if q.0 < num_qubits && !is_hot[q.0 as usize] {
                    is_hot[q.0 as usize] = true;
                    hot_count += 1;
                }
            }
        }

        let cold: Vec<QubitTag> = (0..num_qubits)
            .map(QubitTag)
            .filter(|q| !is_hot[q.0 as usize])
            .collect();

        let bank_count = if cold.is_empty() { 0 } else { spec.banks.len() };
        let mut residence = vec![Residence::Conventional; num_qubits as usize];
        let mut per_bank: Vec<Vec<QubitTag>> = vec![Vec::new(); bank_count];
        for (i, &q) in cold.iter().enumerate() {
            let bank = i % bank_count.max(1);
            residence[q.0 as usize] = Residence::SamBank(bank);
            per_bank[bank].push(q);
        }

        // Round-robin fills banks front to back, so only *trailing* banks can
        // be empty; dropping them keeps the bank indices in `residence` valid.
        let banks: Vec<Bank> = spec
            .banks
            .iter()
            .zip(per_bank)
            .filter(|(_, qs)| !qs.is_empty())
            .map(|(&kind, qs)| Bank::build(kind, &qs, spec.locality_aware_store))
            .collect();

        MemorySystem {
            label,
            cr_slots: spec.cr_slots,
            residence,
            banks,
            conventional_qubits: hot_count,
            num_qubits,
            out_of: vec![None; num_qubits as usize],
        }
    }

    /// The floorplan label this memory system was built with (a
    /// [`FloorplanKind`] label for uniform systems, a [`FloorplanSpec`] label
    /// for mixed ones).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of data qubits managed by the system.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of SAM banks actually instantiated.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Number of qubits currently resident in the conventional region. With a
    /// migration policy attached this is still constant over a run — hot-set
    /// migration is a strict swap.
    pub fn conventional_qubits(&self) -> u64 {
        self.conventional_qubits
    }

    /// Where `qubit` lives. `None` for tags outside `0..num_qubits`.
    pub fn residence(&self, qubit: QubitTag) -> Option<Residence> {
        self.residence.get(qubit.0 as usize).copied()
    }

    /// The SAM bank index holding `qubit`, or `None` for conventional residents.
    pub fn bank_of(&self, qubit: QubitTag) -> Option<usize> {
        match self.residence(qubit) {
            Some(Residence::SamBank(i)) => Some(i),
            _ => None,
        }
    }

    /// The CR-facing port(s) of bank `bank`, registered as the bank's vacancy
    /// anchor(s) at construction. `None` for out-of-range bank indices.
    pub fn bank_port(&self, bank: usize) -> Option<BankPort> {
        self.banks.get(bank).map(|b| match b {
            Bank::Point(p) => BankPort::Cell(p.port()),
            Bank::Dual(d) => {
                let (west, east) = d.ports();
                BankPort::Cells(west, east)
            }
            Bank::Line(l) => BankPort::Row(l.port_row()),
        })
    }

    /// True if the qubit is currently held by the memory system (conventional
    /// region or stored in its bank). Qubits checked out to the CR are not
    /// resident until they are stored back.
    pub fn is_resident(&self, qubit: QubitTag) -> bool {
        match self.residence(qubit) {
            Some(Residence::Conventional) => self.checked_out_of(qubit).is_none(),
            Some(Residence::SamBank(i)) => self.banks[i].contains(qubit),
            None => false,
        }
    }

    /// Cells occupied by the conventional region (50% density: two cells per
    /// hot data qubit, as in the paper's baseline).
    pub fn conventional_cells(&self) -> u64 {
        2 * self.conventional_qubits
    }

    /// Cells occupied by all SAM banks.
    pub fn sam_cells(&self) -> u64 {
        self.banks.iter().map(Bank::cell_count).sum()
    }

    /// Cells occupied by the computational register.
    ///
    /// The point-SAM CR is charged at three cells per register slot: the
    /// minimal six-cell block of Fig. 10a holds the default
    /// [`MemorySystem::MIN_CR_SLOTS`] register cells (plus surgery-ancilla and
    /// routing space), and a wider configured CR grows proportionally, so the
    /// area charged always contains the slot count the simulator schedules
    /// with ([`MemorySystem::effective_cr_slots`]). A dual-port point bank
    /// claims that block on *both* its sides, doubling the charge. The
    /// line-SAM CR is two columns spanning the bank height (Fig. 10b); with
    /// more than two line banks the CR is stacked, growing proportionally.
    /// Mixed floorplans are charged the sum of both shapes. When every qubit
    /// is hot (or the floorplan is conventional) no CR is charged.
    pub fn cr_cells(&self) -> u64 {
        if self.banks.is_empty() {
            return 0;
        }
        let mut cells = 0u64;
        let line_count = self
            .banks
            .iter()
            .filter(|b| matches!(b, Bank::Line(_)))
            .count() as u64;
        if line_count > 0 {
            let height = self
                .banks
                .iter()
                .filter(|b| matches!(b, Bank::Line(_)))
                .map(|b| b.total_height() as u64)
                .max()
                .unwrap_or(0);
            cells += 2 * height * line_count.div_ceil(2);
        }
        // One Fig. 10a CR block per point-bank side facing it: single-port
        // banks share one block, a dual-port bank claims one on each side.
        let point_sides = if self.banks.iter().any(|b| matches!(b, Bank::Dual(_))) {
            2
        } else if self.banks.iter().any(|b| matches!(b, Bank::Point(_))) {
            1
        } else {
            0
        };
        cells += point_sides * 3 * self.effective_cr_slots() as u64;
        cells
    }

    /// Total cells charged to the architecture (conventional + SAM + CR),
    /// excluding magic-state factories.
    pub fn total_cells(&self) -> u64 {
        self.conventional_cells() + self.sam_cells() + self.cr_cells()
    }

    /// Memory density: application data qubits over total cells.
    pub fn memory_density(&self) -> f64 {
        self.num_qubits as f64 / self.total_cells() as f64
    }

    /// Number of CR register slots available to hold loaded qubits, as
    /// configured (the paper fixes this to two).
    pub fn cr_slots(&self) -> u32 {
        self.cr_slots
    }

    /// Minimum number of register slots any physical CR provides: the minimal
    /// six-cell point-SAM CR block of Fig. 10a and the two-column line-SAM CR
    /// of Fig. 10b both hold two register cells, so [`MemorySystem::cr_cells`]
    /// always charges at least this many slots and the simulator always
    /// schedules with at least this many.
    pub const MIN_CR_SLOTS: u32 = 2;

    /// Number of CR register slots the simulator should schedule with: the
    /// configured count, floored at [`MemorySystem::MIN_CR_SLOTS`] because the
    /// smallest CR charged by [`MemorySystem::cr_cells`] already contains two
    /// register cells. Zero when the floorplan has no CR at all (conventional,
    /// or a hybrid whose hot set covers every qubit) — register slots impose
    /// no constraint there.
    pub fn effective_cr_slots(&self) -> u32 {
        if self.banks.is_empty() {
            0
        } else {
            self.cr_slots.max(Self::MIN_CR_SLOTS)
        }
    }

    /// True if `qubit` is currently checked out of its SAM bank to the CR.
    /// Conventional residents never check out (every access is in place), and
    /// unknown tags are never checked out.
    pub fn is_checked_out(&self, qubit: QubitTag) -> bool {
        self.checked_out_of(qubit).is_some()
    }

    /// The bank `qubit` is currently checked out of, per the memory-level
    /// audit record, or `None` if it is not checked out.
    pub fn checked_out_of(&self, qubit: QubitTag) -> Option<u32> {
        self.out_of.get(qubit.0 as usize).copied().flatten()
    }

    /// Total number of qubits currently checked out across all SAM banks.
    pub fn checked_out_count(&self) -> usize {
        self.banks.iter().map(Bank::checked_out_count).sum()
    }

    fn bank_mut(&mut self, qubit: QubitTag) -> Result<Option<&mut Bank>, LatticeError> {
        match self.residence(qubit) {
            Some(Residence::Conventional) => Ok(None),
            Some(Residence::SamBank(i)) => Ok(Some(&mut self.banks[i])),
            None => Err(LatticeError::QubitNotPresent { qubit }),
        }
    }

    /// Estimated load latency without mutating any bank state. Zero for
    /// conventional residents.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] for unknown or checked-out qubits.
    pub fn peek_load(&self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        match self.residence(qubit) {
            Some(Residence::Conventional) => Ok(Beats::ZERO),
            Some(Residence::SamBank(i)) => self.banks[i].peek_load(qubit),
            None => Err(LatticeError::QubitNotPresent { qubit }),
        }
    }

    /// Loads `qubit` towards the CR; returns the latency. Zero (and a no-op) for
    /// conventional residents, which are always directly accessible. The
    /// memory-level audit records which bank the qubit left.
    ///
    /// # Errors
    ///
    /// Returns a [`LatticeError`] if the qubit is unknown, already checked
    /// out, or fails the cross-bank audit.
    pub fn load(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        match self.residence(qubit) {
            None => Err(LatticeError::QubitNotPresent { qubit }),
            Some(Residence::Conventional) => match self.checked_out_of(qubit) {
                None => Ok(Beats::ZERO),
                // The qubit left a bank but its residence was since migrated
                // into the conventional region: surface the inconsistency.
                Some(bank) => Err(LatticeError::CrossBankCheckout {
                    qubit,
                    checked_out_of: bank,
                    resident_bank: None,
                }),
            },
            Some(Residence::SamBank(i)) => {
                if let Some(bank) = self.checked_out_of(qubit) {
                    if bank as usize != i {
                        return Err(LatticeError::CrossBankCheckout {
                            qubit,
                            checked_out_of: bank,
                            resident_bank: Some(i as u32),
                        });
                    }
                    // Checked out of this very bank: fall through so the bank
                    // reports the same double-load error as before the audit.
                }
                let cost = self.banks[i].load(qubit)?;
                self.out_of[qubit.0 as usize] = Some(i as u32);
                Ok(cost)
            }
        }
    }

    /// Stores `qubit` back into its bank (locality-aware by configuration);
    /// returns the latency. Zero for conventional residents. The store is
    /// audited against the memory-level checkout record: it must return the
    /// qubit to the bank it was loaded from.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::CrossBankCheckout`] if the qubit's residence no
    ///   longer names the bank it was checked out of (the audit the runtime
    ///   hot-set migration makes necessary).
    /// * Other [`LatticeError`]s if the qubit is unknown or was never loaded.
    pub fn store(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        match self.residence(qubit) {
            None => Err(LatticeError::QubitNotPresent { qubit }),
            Some(Residence::Conventional) => match self.checked_out_of(qubit) {
                None => Ok(Beats::ZERO),
                Some(bank) => Err(LatticeError::CrossBankCheckout {
                    qubit,
                    checked_out_of: bank,
                    resident_bank: None,
                }),
            },
            Some(Residence::SamBank(i)) => {
                match self.checked_out_of(qubit) {
                    Some(bank) if bank as usize == i => {
                        let cost = self.banks[i].store(qubit)?;
                        self.out_of[qubit.0 as usize] = None;
                        Ok(cost)
                    }
                    Some(bank) => Err(LatticeError::CrossBankCheckout {
                        qubit,
                        checked_out_of: bank,
                        resident_bank: Some(i as u32),
                    }),
                    // Never checked out at the system level: delegate so the
                    // bank produces its own typed error (`QubitAlreadyPlaced`
                    // for a store of a qubit that never left,
                    // `QubitNotCheckedOut` for a foreign tag).
                    None => self.banks[i].store(qubit),
                }
            }
        }
    }

    /// Access latency for an in-memory single-qubit operation on `qubit`
    /// (the gate latency itself is not included). Zero for conventional residents.
    ///
    /// # Errors
    ///
    /// Returns a [`LatticeError`] if the qubit is unknown or checked out.
    pub fn in_memory_seek(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        match self.bank_mut(qubit)? {
            None => Ok(Beats::ZERO),
            Some(bank) => bank.in_memory_seek(qubit),
        }
    }

    /// Access latency for an in-memory two-qubit operation between a CR slot and
    /// `qubit` (the one-beat surgery is not included). Zero for conventional
    /// residents.
    ///
    /// # Errors
    ///
    /// Returns a [`LatticeError`] if the qubit is unknown or checked out.
    pub fn in_memory_two_qubit_access(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        match self.bank_mut(qubit)? {
            None => Ok(Beats::ZERO),
            Some(bank) => bank.in_memory_two_qubit_access(qubit),
        }
    }

    /// Fused CX access: the paper's runtime CX sequence — peek both
    /// operands, load the cheaper one, access the other in memory, store the
    /// loaded one back — as one call returning the `(load, access, store)`
    /// latencies.
    ///
    /// When both operands are stored in the same single-port point bank with
    /// clean checkout records (the dominant shape in every point-SAM sweep),
    /// the whole sequence runs as one fused bank call that shares the
    /// residence lookups, checkout audits, and position/cost computations
    /// the five separate calls would repeat; the memory-level audit record
    /// is provably unchanged by the balanced checkout/check-in pair, so it
    /// is not touched. Every other shape — conventional or mixed residence,
    /// dual-port or line banks, a checked-out operand, or the degenerate
    /// self-CX — takes the literal five-call sequence, so errors and partial
    /// state on failure are identical to issuing the calls separately (the
    /// executable spec kept in `Simulator::run_classified`).
    ///
    /// # Errors
    ///
    /// Exactly those of the five-call sequence, surfaced from the first
    /// failing step.
    pub fn cx_access(
        &mut self,
        control: QubitTag,
        target: QubitTag,
    ) -> Result<(Beats, Beats, Beats), LatticeError> {
        if control != target {
            match (self.residence(control), self.residence(target)) {
                (Some(Residence::SamBank(i)), Some(Residence::SamBank(j)))
                    if i == j
                        && self.checked_out_of(control).is_none()
                        && self.checked_out_of(target).is_none() =>
                {
                    if let Bank::Point(bank) = &mut self.banks[i] {
                        return bank.cx_access(control, target);
                    }
                }
                // Both operands directly accessible: every step of the spec
                // is a zero-latency no-op (loads and stores of conventional
                // residents with clean audit records do not change any
                // state).
                (Some(Residence::Conventional), Some(Residence::Conventional))
                    if self.checked_out_of(control).is_none()
                        && self.checked_out_of(target).is_none() =>
                {
                    return Ok((Beats::ZERO, Beats::ZERO, Beats::ZERO));
                }
                _ => {}
            }
        }
        let peek_c = self.peek_load(control)?;
        let peek_t = self.peek_load(target)?;
        let (loaded, other) = if peek_c <= peek_t {
            (control, target)
        } else {
            (target, control)
        };
        let load = self.load(loaded)?;
        let access = self.in_memory_two_qubit_access(other)?;
        let store = self.store(loaded)?;
        Ok((load, access, store))
    }

    /// Runtime hot-set migration: promotes `promote` out of its SAM bank into
    /// the conventional region and demotes `demote` (a conventional resident)
    /// into the freed bank capacity, as one balanced swap. Returns the
    /// physical movement latency (the promoted qubit's extraction plus the
    /// demoted qubit's insertion); the conventional-region size and every
    /// bank's cell shape are conserved.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::InvalidMigration`] if `promote` is not a SAM-bank
    ///   resident or `demote` is not a conventional resident.
    /// * [`LatticeError::CrossBankCheckout`] if `promote` is currently
    ///   checked out to the CR — migrating it would desynchronize its
    ///   residence from the bank holding its checkout record.
    pub fn migrate(&mut self, promote: QubitTag, demote: QubitTag) -> Result<Beats, LatticeError> {
        let bank = match self.residence(promote) {
            Some(Residence::SamBank(i)) => i,
            _ => return Err(LatticeError::InvalidMigration { promote, demote }),
        };
        if let Some(out) = self.checked_out_of(promote) {
            return Err(LatticeError::CrossBankCheckout {
                qubit: promote,
                checked_out_of: out,
                resident_bank: Some(bank as u32),
            });
        }
        match self.residence(demote) {
            Some(Residence::Conventional) => {}
            _ => return Err(LatticeError::InvalidMigration { promote, demote }),
        }
        if self.checked_out_of(demote).is_some() {
            // Unreachable through the audited load path (conventional
            // residents never check out), kept as defense in depth.
            return Err(LatticeError::InvalidMigration { promote, demote });
        }
        let cost = self.banks[bank].migrate_swap(promote, demote)?;
        self.residence[promote.0 as usize] = Residence::Conventional;
        self.residence[demote.0 as usize] = Residence::SamBank(bank);
        debug_assert_eq!(
            self.residence
                .iter()
                .filter(|r| matches!(r, Residence::Conventional))
                .count() as u64,
            self.conventional_qubits,
            "migration must conserve the conventional-region size"
        );
        Ok(cost)
    }

    /// Test-only hook: rewrites a residence entry *without* moving anything,
    /// to stage the desynchronized states the cross-bank audit exists to
    /// catch. Hidden from docs; never called outside tests.
    #[doc(hidden)]
    pub fn force_residence_for_audit_test(&mut self, qubit: QubitTag, residence: Residence) {
        self.residence[qubit.0 as usize] = residence;
    }
}

impl fmt::Display for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} qubits in {} cells ({} conventional, {} SAM, {} CR), density {:.1}%",
            self.label,
            self.num_qubits,
            self.total_cells(),
            self.conventional_cells(),
            self.sam_cells(),
            self.cr_cells(),
            100.0 * self.memory_density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(banks: u32) -> ArchConfig {
        ArchConfig::new(FloorplanKind::PointSam { banks }, 1)
    }

    fn line(banks: u32) -> ArchConfig {
        ArchConfig::new(FloorplanKind::LineSam { banks }, 1)
    }

    #[test]
    fn line_sam_multiplier_density_matches_the_paper() {
        // 400 qubits, one line-SAM bank: 420 SAM cells + 42 CR cells = 462,
        // the paper's "approximately 400/462 ≃ 87%".
        let mem = MemorySystem::new(&line(1), 400, &[]);
        assert_eq!(mem.sam_cells(), 420);
        assert_eq!(mem.cr_cells(), 42);
        assert_eq!(mem.total_cells(), 462);
        assert!((mem.memory_density() - 400.0 / 462.0).abs() < 1e-9);
    }

    #[test]
    fn point_sam_density_approaches_one() {
        let mem = MemorySystem::new(&point(1), 400, &[]);
        assert_eq!(mem.sam_cells(), 401);
        assert_eq!(mem.cr_cells(), 6);
        assert!(mem.memory_density() > 0.97);
    }

    #[test]
    fn dual_point_sam_trades_density_for_latency() {
        let config = ArchConfig::new(FloorplanKind::DualPointSam { banks: 1 }, 1);
        let mem = MemorySystem::new(&config, 400, &[]);
        // One extra cell per bank plus a CR block on both sides.
        assert_eq!(mem.sam_cells(), 402);
        assert_eq!(mem.cr_cells(), 12);
        assert!(mem.memory_density() > 0.95);
        let single = MemorySystem::new(&point(1), 400, &[]);
        assert!(mem.memory_density() < single.memory_density());
        // Worst-case loads are cheaper through the nearer port.
        let worst = |m: &MemorySystem| {
            (0..400)
                .map(|q| m.peek_load(QubitTag(q)).unwrap())
                .max()
                .unwrap()
        };
        assert!(worst(&mem) < worst(&single));
        assert!(matches!(mem.bank_port(0), Some(BankPort::Cells(_, _))));
    }

    #[test]
    fn mixed_spec_composes_heterogeneous_banks() {
        use crate::floorplan::{BankKind, FloorplanSpec};
        let spec = FloorplanSpec {
            banks: vec![BankKind::DualPointSam, BankKind::LineSam],
            cr_slots: 2,
            locality_aware_store: true,
        };
        let mut mem = MemorySystem::from_spec(&spec, 100, &[]);
        assert_eq!(mem.bank_count(), 2);
        assert_eq!(mem.label(), "dual-point+line floorplan");
        assert!(matches!(mem.bank_port(0), Some(BankPort::Cells(_, _))));
        assert!(matches!(mem.bank_port(1), Some(BankPort::Row(_))));
        // CR charge combines both shapes: two point blocks + line columns.
        assert!(mem.cr_cells() > 12);
        // Round-robin: even tags in bank 0, odd in bank 1.
        assert_eq!(mem.bank_of(QubitTag(0)), Some(0));
        assert_eq!(mem.bank_of(QubitTag(1)), Some(1));
        // Both flavours serve loads and stores through one facade.
        for q in [QubitTag(4), QubitTag(5)] {
            let load = mem.load(q).unwrap();
            assert!(load > Beats::ZERO);
            mem.store(q).unwrap();
        }
        assert_eq!(mem.checked_out_count(), 0);
    }

    #[test]
    fn conventional_floorplan_has_half_density() {
        let mem = MemorySystem::new(&ArchConfig::conventional(1), 400, &[]);
        assert_eq!(mem.total_cells(), 800);
        assert!((mem.memory_density() - 0.5).abs() < 1e-12);
        assert_eq!(mem.bank_count(), 0);
        // Every access is free.
        let mut mem = mem;
        assert_eq!(mem.load(QubitTag(7)).unwrap(), Beats::ZERO);
        assert_eq!(mem.store(QubitTag(7)).unwrap(), Beats::ZERO);
    }

    #[test]
    fn multi_bank_distribution_is_round_robin() {
        let mem = MemorySystem::new(&line(4), 100, &[]);
        assert_eq!(mem.bank_count(), 4);
        assert_eq!(mem.bank_of(QubitTag(0)), Some(0));
        assert_eq!(mem.bank_of(QubitTag(1)), Some(1));
        assert_eq!(mem.bank_of(QubitTag(5)), Some(1));
        // Density is lower than the single-bank case but still far above 50%.
        let single = MemorySystem::new(&line(1), 100, &[]);
        assert!(mem.memory_density() < single.memory_density());
        assert!(mem.memory_density() > 0.6);
    }

    #[test]
    fn hybrid_floorplan_mixes_conventional_and_sam_cells() {
        let hot: Vec<QubitTag> = (0..50).map(QubitTag).collect();
        let config = point(1).with_hybrid_fraction(0.5);
        let mem = MemorySystem::new(&config, 100, &hot);
        assert_eq!(mem.conventional_qubits(), 50);
        assert_eq!(mem.conventional_cells(), 100);
        assert_eq!(mem.sam_cells(), 51);
        assert_eq!(mem.residence(QubitTag(3)), Some(Residence::Conventional));
        assert_eq!(mem.residence(QubitTag(60)), Some(Residence::SamBank(0)));
        // Hot qubits are free to access; cold ones are not.
        let mut mem = mem;
        assert_eq!(mem.load(QubitTag(3)).unwrap(), Beats::ZERO);
        assert!(mem.load(QubitTag(60)).unwrap() > Beats::ZERO);
    }

    #[test]
    fn fully_hot_hybrid_equals_the_conventional_baseline_density() {
        let hot: Vec<QubitTag> = (0..100).map(QubitTag).collect();
        let config = line(1).with_hybrid_fraction(1.0);
        let mem = MemorySystem::new(&config, 100, &hot);
        assert_eq!(mem.bank_count(), 0);
        assert_eq!(mem.total_cells(), 200);
        assert!((mem.memory_density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn load_store_round_trip_keeps_residency_consistent() {
        let mut mem = MemorySystem::new(&point(2), 60, &[]);
        let q = QubitTag(59);
        assert!(mem.is_resident(q));
        let load = mem.load(q).unwrap();
        assert!(load > Beats::ZERO);
        assert!(!mem.is_resident(q));
        // Loading again fails until it is stored back.
        assert!(mem.load(q).is_err());
        mem.store(q).unwrap();
        assert!(mem.is_resident(q));
    }

    #[test]
    fn unknown_qubits_are_rejected() {
        let mut mem = MemorySystem::new(&point(1), 10, &[]);
        assert!(mem.load(QubitTag(10)).is_err());
        assert!(mem.peek_load(QubitTag(99)).is_err());
        assert_eq!(mem.residence(QubitTag(10)), None);
        assert!(!mem.is_resident(QubitTag(10)));
    }

    #[test]
    fn bank_ports_are_exposed_per_flavour() {
        let mem = MemorySystem::new(&point(2), 60, &[]);
        for bank in 0..mem.bank_count() {
            assert!(matches!(mem.bank_port(bank), Some(BankPort::Cell(_))));
        }
        let mem = MemorySystem::new(&line(2), 60, &[]);
        for bank in 0..mem.bank_count() {
            assert!(matches!(mem.bank_port(bank), Some(BankPort::Row(_))));
        }
        assert_eq!(mem.bank_port(99), None);
        // The conventional baseline has no banks, hence no ports.
        let mem = MemorySystem::new(&ArchConfig::conventional(1), 10, &[]);
        assert_eq!(mem.bank_port(0), None);
    }

    #[test]
    fn checkout_state_is_visible_through_the_memory_system() {
        let mut mem = MemorySystem::new(&point(2), 60, &[]);
        assert_eq!(mem.checked_out_count(), 0);
        let q = QubitTag(5);
        mem.load(q).unwrap();
        assert!(mem.is_checked_out(q));
        assert_eq!(mem.checked_out_of(q), Some(1));
        assert_eq!(mem.checked_out_count(), 1);
        // Another bank's qubit is independent.
        let other = QubitTag(6);
        assert!(!mem.is_checked_out(other));
        mem.load(other).unwrap();
        assert_eq!(mem.checked_out_count(), 2);
        mem.store(q).unwrap();
        assert!(!mem.is_checked_out(q));
        assert_eq!(mem.checked_out_of(q), None);
        assert_eq!(mem.checked_out_count(), 1);
        // Conventional residents and unknown tags never check out.
        let mut hybrid = MemorySystem::new(&point(1).with_hybrid_fraction(0.5), 10, &[QubitTag(0)]);
        hybrid.load(QubitTag(0)).unwrap();
        assert!(!hybrid.is_checked_out(QubitTag(0)));
        assert!(!hybrid.is_checked_out(QubitTag(999)));
    }

    #[test]
    fn store_of_a_never_loaded_bank_qubit_is_a_typed_error() {
        let mut mem = MemorySystem::new(&line(2), 40, &[]);
        let err = mem.store(QubitTag(3)).unwrap_err();
        assert!(matches!(err, LatticeError::QubitAlreadyPlaced { .. }));
        mem.load(QubitTag(3)).unwrap();
        mem.load(QubitTag(5)).unwrap();
        mem.store(QubitTag(3)).unwrap();
        // Stored twice: the second store finds the ledger empty for this tag.
        let err = mem.store(QubitTag(3)).unwrap_err();
        assert!(matches!(err, LatticeError::QubitAlreadyPlaced { .. }));
        mem.store(QubitTag(5)).unwrap();
        assert_eq!(mem.checked_out_count(), 0);
    }

    #[test]
    fn migration_swaps_hot_and_cold_residences() {
        let hot: Vec<QubitTag> = vec![QubitTag(0), QubitTag(1)];
        let config = point(1).with_hybrid_fraction(0.1);
        let mut mem = MemorySystem::new(&config, 20, &hot);
        let cold = QubitTag(10);
        assert_eq!(mem.residence(cold), Some(Residence::SamBank(0)));
        let before = mem.conventional_qubits();
        let cost = mem.migrate(cold, QubitTag(0)).unwrap();
        assert!(cost > Beats::ZERO);
        assert_eq!(mem.residence(cold), Some(Residence::Conventional));
        assert_eq!(mem.residence(QubitTag(0)), Some(Residence::SamBank(0)));
        assert_eq!(mem.conventional_qubits(), before);
        // The promoted qubit now loads for free; the demoted one pays.
        assert_eq!(mem.load(cold).unwrap(), Beats::ZERO);
        assert!(mem.load(QubitTag(0)).unwrap() > Beats::ZERO);
        mem.store(QubitTag(0)).unwrap();
        // Shape violations are typed errors.
        assert!(matches!(
            mem.migrate(QubitTag(1), QubitTag(2)),
            Err(LatticeError::InvalidMigration { .. })
        ));
        assert!(matches!(
            mem.migrate(QubitTag(5), QubitTag(6)),
            Err(LatticeError::InvalidMigration { .. })
        ));
    }

    #[test]
    fn migrating_a_checked_out_qubit_is_a_cross_bank_error() {
        let hot = vec![QubitTag(0)];
        let config = point(1).with_hybrid_fraction(0.05);
        let mut mem = MemorySystem::new(&config, 20, &hot);
        let q = QubitTag(7);
        mem.load(q).unwrap();
        let err = mem.migrate(q, QubitTag(0)).unwrap_err();
        assert!(matches!(
            err,
            LatticeError::CrossBankCheckout {
                qubit: QubitTag(7),
                ..
            }
        ));
        // Nothing moved: the round trip still settles cleanly.
        mem.store(q).unwrap();
        assert_eq!(mem.checked_out_count(), 0);
    }

    #[test]
    fn foreign_bank_store_after_migration_is_the_typed_audit_error() {
        // Regression for the cross-bank audit: check a qubit out of bank 0,
        // then desynchronize its residence (as a buggy migration engine
        // might). The store must be the typed `CrossBankCheckout`, *not* a
        // silent consumption of the other bank's scan vacancy.
        let mut mem = MemorySystem::new(&point(2), 40, &[]);
        let q = QubitTag(0);
        assert_eq!(mem.bank_of(q), Some(0));
        mem.load(q).unwrap();
        let vacancies_before: usize = mem.checked_out_count();
        mem.force_residence_for_audit_test(q, Residence::SamBank(1));
        let err = mem.store(q).unwrap_err();
        assert_eq!(
            err,
            LatticeError::CrossBankCheckout {
                qubit: q,
                checked_out_of: 0,
                resident_bank: Some(1),
            }
        );
        // A load through the desynchronized residence is audited too.
        assert!(matches!(
            mem.load(q),
            Err(LatticeError::CrossBankCheckout { .. })
        ));
        // ... and a residence migrated into the conventional region as well.
        mem.force_residence_for_audit_test(q, Residence::Conventional);
        assert!(matches!(
            mem.store(q),
            Err(LatticeError::CrossBankCheckout {
                resident_bank: None,
                ..
            })
        ));
        // The rejections consumed nothing.
        assert_eq!(mem.checked_out_count(), vacancies_before);
        // Restoring the true residence lets the round trip settle.
        mem.force_residence_for_audit_test(q, Residence::SamBank(0));
        mem.store(q).unwrap();
        assert_eq!(mem.checked_out_count(), 0);
    }

    #[test]
    fn effective_cr_slots_floors_at_the_physical_minimum() {
        // The minimal CR already holds two register cells.
        assert_eq!(MemorySystem::MIN_CR_SLOTS, 2);
        let mut config = point(1);
        config.cr_slots = 1;
        let mem = MemorySystem::new(&config, 20, &[]);
        assert_eq!(mem.cr_slots(), 1);
        assert_eq!(mem.effective_cr_slots(), 2);
        // The charged point CR always contains the scheduled slots: the
        // six-cell Fig. 10a block for the default two, growing with wider
        // configurations.
        assert_eq!(mem.cr_cells(), 6);
        let mut config = point(1);
        config.cr_slots = 4;
        let mem = MemorySystem::new(&config, 20, &[]);
        assert_eq!(mem.effective_cr_slots(), 4);
        assert_eq!(mem.cr_cells(), 12);
        // Larger configured CRs are taken as configured.
        let mut config = line(1);
        config.cr_slots = 4;
        let mem = MemorySystem::new(&config, 20, &[]);
        assert_eq!(mem.effective_cr_slots(), 4);
        // No banks → no CR → no slot constraint.
        let mem = MemorySystem::new(&ArchConfig::conventional(1), 20, &[]);
        assert_eq!(mem.effective_cr_slots(), 0);
    }

    #[test]
    fn hot_list_ignores_duplicates_and_out_of_range_tags() {
        let hot = vec![QubitTag(1), QubitTag(1), QubitTag(500)];
        let mem = MemorySystem::new(&point(1).with_hybrid_fraction(0.1), 10, &hot);
        assert_eq!(mem.conventional_qubits(), 1);
    }

    #[test]
    fn in_memory_accesses_are_cheaper_than_loads_for_point_sam() {
        let mut mem = MemorySystem::new(&point(1), 100, &[]);
        let far = QubitTag(99);
        let load_estimate = mem.peek_load(far).unwrap();
        let seek = mem.in_memory_seek(far).unwrap();
        assert!(seek < load_estimate);
    }

    #[test]
    fn display_mentions_density() {
        let mem = MemorySystem::new(&line(1), 400, &[]);
        let s = mem.to_string();
        assert!(s.contains("density"));
        assert!(s.contains("Line #SAM=1"));
        assert_eq!(mem.label(), "Line #SAM=1");
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_panics() {
        let _ = MemorySystem::new(&point(1), 0, &[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any realistic qubit count (small memories are dominated by the CR
        /// overhead) the density of LSQCA without a hybrid region is strictly
        /// higher than the conventional baseline's 50%, and at most 100%.
        #[test]
        fn lsqca_density_beats_the_baseline(
            n in 64u32..2000,
            line_sam in proptest::bool::ANY,
            banks in 1u32..3,
        ) {
            let floorplan = if line_sam {
                FloorplanKind::LineSam { banks }
            } else {
                FloorplanKind::PointSam { banks }
            };
            let config = ArchConfig::new(floorplan, 1);
            let mem = MemorySystem::new(&config, n, &[]);
            let density = mem.memory_density();
            prop_assert!(density > 0.5, "density {density} should beat 50%");
            prop_assert!(density <= 1.0);
            // Every qubit is resident and assigned to exactly one bank.
            for q in 0..n {
                prop_assert!(mem.is_resident(QubitTag(q)));
                prop_assert!(mem.bank_of(QubitTag(q)).unwrap() < mem.bank_count());
            }
        }

        /// The dense residence table is observationally identical to the
        /// seed's `HashMap<QubitTag, Residence>` semantics through random
        /// load/store/seek sequences, including out-of-range and hot tags.
        #[test]
        fn dense_residence_matches_hashmap_semantics(
            n in 8u32..200,
            hot in proptest::collection::vec(0u32..200, 0..8),
            ops in proptest::collection::vec((0u32..250, 0u32..3), 1..80),
            line_sam in proptest::bool::ANY,
        ) {
            let floorplan = if line_sam {
                FloorplanKind::LineSam { banks: 2 }
            } else {
                FloorplanKind::PointSam { banks: 2 }
            };
            let config = ArchConfig::new(floorplan, 1).with_hybrid_fraction(0.2);
            let hot: Vec<QubitTag> = hot.into_iter().map(QubitTag).collect();
            let mut mem = MemorySystem::new(&config, n, &hot);

            // Shadow map with the legacy semantics: insert exactly what the
            // constructor assigned, keyed by tag.
            let mirror: std::collections::HashMap<QubitTag, Residence> = (0..n)
                .map(QubitTag)
                .filter_map(|q| mem.residence(q).map(|r| (q, r)))
                .collect();
            prop_assert_eq!(mirror.len(), n as usize, "every tag has a residence");

            for (tag, op) in ops {
                let q = QubitTag(tag);
                // Residence answers must match the map at every point,
                // including tags that were never assigned (tag >= n).
                prop_assert_eq!(mem.residence(q), mirror.get(&q).copied());
                prop_assert_eq!(mem.bank_of(q), match mirror.get(&q) {
                    Some(Residence::SamBank(i)) => Some(*i),
                    _ => None,
                });
                match op {
                    0 => {
                        if mem.is_resident(q) && mem.load(q).is_ok() {
                            let _ = mem.store(q);
                        }
                    }
                    1 => { let _ = mem.in_memory_seek(q); }
                    _ => { let _ = mem.in_memory_two_qubit_access(q); }
                }
                // Non-migrating accesses never change where a qubit *belongs*.
                prop_assert_eq!(mem.residence(q), mirror.get(&q).copied());
            }
        }

        /// Random migration traces interleaved with load/store/seek traffic
        /// keep the system consistent: the conventional-region size is
        /// conserved, residences and bank membership agree, the memory-level
        /// checkout audit matches the per-bank ledgers, and rejected
        /// operations (including every typed cross-bank/shape error) never
        /// corrupt any count.
        #[test]
        fn random_migration_traces_preserve_consistency(
            n in 12u32..120,
            hot_count in 1u32..6,
            ops in proptest::collection::vec(
                (0u32..130, 0u32..130, 0u32..4), 1..120
            ),
            flavour in 0u32..3,
        ) {
            let floorplan = match flavour {
                0 => FloorplanKind::PointSam { banks: 2 },
                1 => FloorplanKind::DualPointSam { banks: 1 },
                _ => FloorplanKind::LineSam { banks: 2 },
            };
            let hot: Vec<QubitTag> = (0..hot_count.min(n / 2)).map(QubitTag).collect();
            let config = ArchConfig::new(floorplan, 1).with_hybrid_fraction(0.2);
            let mut mem = MemorySystem::new(&config, n, &hot);
            let conventional = mem.conventional_qubits();
            let total_cells = mem.total_cells();
            let mut out: std::collections::HashSet<QubitTag> =
                std::collections::HashSet::new();

            for (a, b, op) in ops {
                let (qa, qb) = (QubitTag(a), QubitTag(b));
                match op {
                    0 => {
                        // Conventional loads are free no-ops; only bank loads
                        // check the qubit out.
                        if mem.load(qa).is_ok() && mem.is_checked_out(qa) {
                            prop_assert!(a < n);
                            out.insert(qa);
                        }
                    }
                    1 => {
                        if mem.store(qa).is_ok() && out.contains(&qa) {
                            out.remove(&qa);
                        }
                    }
                    2 => {
                        let before_a = mem.residence(qa);
                        let before_b = mem.residence(qb);
                        match mem.migrate(qa, qb) {
                            Ok(_) => {
                                // Legal swaps flip exactly the two residences.
                                prop_assert!(matches!(before_a, Some(Residence::SamBank(_))));
                                prop_assert_eq!(before_b, Some(Residence::Conventional));
                                prop_assert_eq!(
                                    mem.residence(qa),
                                    Some(Residence::Conventional)
                                );
                                prop_assert_eq!(mem.residence(qb), before_a);
                                prop_assert!(!out.contains(&qa));
                            }
                            Err(_) => {
                                // Rejections leave both residences untouched.
                                prop_assert_eq!(mem.residence(qa), before_a);
                                prop_assert_eq!(mem.residence(qb), before_b);
                            }
                        }
                    }
                    _ => { let _ = mem.in_memory_seek(qa); }
                }
                // Global invariants after every operation.
                prop_assert_eq!(mem.conventional_qubits(), conventional);
                prop_assert_eq!(mem.total_cells(), total_cells);
                prop_assert_eq!(mem.checked_out_count(), out.len());
                for &q in &out {
                    prop_assert!(mem.is_checked_out(q));
                    // The audit record names the bank whose ledger has it.
                    let bank = mem.checked_out_of(q).unwrap() as usize;
                    prop_assert_eq!(mem.bank_of(q), Some(bank));
                }
                for q in (0..n).map(QubitTag) {
                    match mem.residence(q).unwrap() {
                        Residence::Conventional => {
                            prop_assert!(!out.contains(&q));
                        }
                        Residence::SamBank(i) => {
                            prop_assert!(i < mem.bank_count());
                            prop_assert_eq!(
                                mem.is_resident(q),
                                !out.contains(&q)
                            );
                        }
                    }
                }
            }
        }
    }
}
