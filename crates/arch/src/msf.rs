//! Magic-state factory model.
//!
//! The paper uses Litinski's factory design: a single factory distills one magic
//! state every 15 code beats, and generated states are buffered (buffer capacity
//! `2 × factories`) so that production can run ahead of consumption and hide its
//! latency (Sec. IV-A, VI-A). With one factory the supply rate (1/15 per beat) is
//! far below the demand of the arithmetic benchmarks (one per ≈2 beats for the
//! multiplier), which is precisely the bottleneck LSQCA hides its load/store
//! latency behind.

use lsqca_lattice::Beats;
use std::collections::VecDeque;
use std::fmt;

/// Static configuration of the magic-state supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsfConfig {
    /// Number of factories distilling in parallel.
    pub factories: u32,
    /// Beats needed by one factory to distill one state (15 in the paper).
    pub beats_per_state: u64,
    /// Capacity of the shared output buffer (`2 × factories` in the paper).
    pub buffer_capacity: u32,
}

impl MsfConfig {
    /// The paper's configuration for a given factory count.
    pub fn paper(factories: u32) -> Self {
        assert!(factories > 0, "at least one factory is required");
        MsfConfig {
            factories,
            beats_per_state: 15,
            buffer_capacity: 2 * factories,
        }
    }

    /// Average steady-state production rate in states per beat.
    pub fn production_rate(&self) -> f64 {
        self.factories as f64 / self.beats_per_state as f64
    }
}

impl fmt::Display for MsfConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} factories, 1 state / {} beats each, buffer {}",
            self.factories, self.beats_per_state, self.buffer_capacity
        )
    }
}

/// Stateful magic-state supply used by the simulator.
///
/// Model: each factory distills continuously; a finished state either enters the
/// shared buffer (if a slot is free) or is held in the factory's output port,
/// blocking that factory from starting its next distillation until the state is
/// delivered. States are consumed strictly in production order. Consequently the
/// sustained supply rate is `factories / beats_per_state` and the maximum
/// run-ahead is `buffer_capacity` buffered states plus one held state per
/// factory.
///
/// A `PM` instruction asks [`MagicStateSupply::acquire`] for the earliest beat at
/// which a state is available; the state is consumed at that beat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MagicStateSupply {
    config: MsfConfig,
    /// Delivery times of the last `factories` states (oldest first): a factory is
    /// free to start a new distillation once it has delivered its previous state.
    recent_deliveries: VecDeque<Beats>,
    /// Consumption times of the last `buffer_capacity` states (oldest first): a
    /// completed state can be delivered only once a buffer slot is free, i.e.
    /// once the state `buffer_capacity` places earlier has been consumed.
    recent_consumptions: VecDeque<Beats>,
    /// Total number of states handed out.
    consumed: u64,
}

impl MagicStateSupply {
    /// Creates a supply that starts distilling at beat zero with an empty buffer.
    pub fn new(config: MsfConfig) -> Self {
        MagicStateSupply {
            config,
            recent_deliveries: VecDeque::with_capacity(config.factories as usize),
            recent_consumptions: VecDeque::with_capacity(config.buffer_capacity as usize),
            consumed: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> MsfConfig {
        self.config
    }

    /// Number of states consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Delivery time of the next state given a (hypothetical) request at `now`.
    fn next_delivery(&self) -> Beats {
        // The producing factory can start once it delivered its previous state
        // (the state `factories` places earlier).
        let start = if self.recent_deliveries.len() < self.config.factories as usize {
            Beats::ZERO
        } else {
            *self
                .recent_deliveries
                .front()
                .expect("non-empty by length check")
        };
        let distilled = start + Beats(self.config.beats_per_state);
        // The state can leave the factory once a buffer slot is guaranteed: the
        // state `buffer_capacity` places earlier must have been consumed.
        let slot_free = if self.recent_consumptions.len() < self.config.buffer_capacity as usize {
            Beats::ZERO
        } else {
            *self
                .recent_consumptions
                .front()
                .expect("non-empty by length check")
        };
        distilled.max(slot_free)
    }

    /// Requests one magic state at beat `now`; returns the beat at which the
    /// state is actually available (≥ `now`). The state is consumed.
    pub fn acquire(&mut self, now: Beats) -> Beats {
        let delivery = self.next_delivery();
        let consumed_at = delivery.max(now);
        self.recent_deliveries.push_back(delivery);
        if self.recent_deliveries.len() > self.config.factories as usize {
            self.recent_deliveries.pop_front();
        }
        self.recent_consumptions.push_back(consumed_at);
        if self.recent_consumptions.len() > self.config.buffer_capacity as usize {
            self.recent_consumptions.pop_front();
        }
        self.consumed += 1;
        consumed_at
    }

    /// Number of states ready for immediate consumption at beat `now` (buffered
    /// states plus states held in factory output ports).
    pub fn buffered(&mut self, now: Beats) -> usize {
        let mut probe = self.clone();
        let limit = (self.config.buffer_capacity + self.config.factories) as usize;
        let mut ready = 0;
        for _ in 0..limit {
            if probe.next_delivery() <= now {
                probe.acquire(now);
                ready += 1;
            } else {
                break;
            }
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_values() {
        let cfg = MsfConfig::paper(4);
        assert_eq!(cfg.factories, 4);
        assert_eq!(cfg.beats_per_state, 15);
        assert_eq!(cfg.buffer_capacity, 8);
        assert!((cfg.production_rate() - 4.0 / 15.0).abs() < 1e-12);
        assert!(!cfg.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one factory")]
    fn zero_factories_panics() {
        let _ = MsfConfig::paper(0);
    }

    #[test]
    fn first_state_is_ready_after_fifteen_beats() {
        let mut supply = MagicStateSupply::new(MsfConfig::paper(1));
        assert_eq!(supply.acquire(Beats(0)), Beats(15));
        // The next one needs another distillation round.
        assert_eq!(supply.acquire(Beats(15)), Beats(30));
        assert_eq!(supply.consumed(), 2);
    }

    #[test]
    fn buffered_states_hide_the_latency() {
        let mut supply = MagicStateSupply::new(MsfConfig::paper(1));
        // After a long idle period the buffer (capacity 2) is full and the
        // factory holds one more finished state, so three requests are served
        // instantly.
        assert_eq!(supply.buffered(Beats(100)), 3);
        assert_eq!(supply.acquire(Beats(100)), Beats(100));
        assert_eq!(supply.acquire(Beats(100)), Beats(100));
        assert_eq!(supply.acquire(Beats(100)), Beats(100));
        // The fourth request waits for a fresh distillation, which restarted
        // when the factory's output port freed up.
        let fourth = supply.acquire(Beats(100));
        assert!(fourth > Beats(100));
        assert!(fourth <= Beats(130));
    }

    #[test]
    fn buffer_capacity_limits_run_ahead() {
        let mut supply = MagicStateSupply::new(MsfConfig::paper(1));
        // No matter how long production idles, the run-ahead is bounded by the
        // buffer capacity plus one held state per factory.
        assert_eq!(supply.buffered(Beats(10_000)), 3);
        let mut supply = MagicStateSupply::new(MsfConfig::paper(4));
        assert_eq!(supply.buffered(Beats(10_000)), 12);
    }

    #[test]
    fn sustained_rate_is_bounded_by_the_factory_count() {
        // Draining 100 states as fast as possible cannot beat factories/15.
        for factories in [1u32, 2, 4] {
            let mut supply = MagicStateSupply::new(MsfConfig::paper(factories));
            let last = (0..100).map(|_| supply.acquire(Beats(0))).max().unwrap();
            let min_beats = (100 - 2 * factories as u64 - factories as u64).saturating_mul(15)
                / factories as u64;
            assert!(
                last.as_u64() >= min_beats,
                "{factories} factories finished 100 states too fast ({last})"
            );
        }
    }

    #[test]
    fn more_factories_produce_faster() {
        let mut one = MagicStateSupply::new(MsfConfig::paper(1));
        let mut four = MagicStateSupply::new(MsfConfig::paper(4));
        // Drain the initial buffers first.
        for _ in 0..2 {
            one.acquire(Beats(0));
        }
        for _ in 0..8 {
            four.acquire(Beats(0));
        }
        // Next ten states: the four-factory supply finishes much earlier.
        let one_done = (0..10).map(|_| one.acquire(Beats(0))).max().unwrap();
        let four_done = (0..10).map(|_| four.acquire(Beats(0))).max().unwrap();
        assert!(four_done < one_done);
    }

    #[test]
    fn demand_slower_than_production_never_waits() {
        let mut supply = MagicStateSupply::new(MsfConfig::paper(1));
        let mut now = Beats(40);
        for _ in 0..20 {
            let ready = supply.acquire(now);
            assert_eq!(ready, now, "a slow consumer should always find a state");
            now += Beats(40);
        }
    }
}
