//! The dual-port point-SAM bank model.
//!
//! A dual-port point SAM stores `n` logical qubits in `n + 2` cells: every
//! cell holds data except **two** scan vacancies, one parked at a CR port on
//! the bank's west edge and one at a port on its east edge. Every access picks
//! the cheaper side, which roughly halves the worst-case transport distance,
//! and because a second vacancy always exists the faster two-vacancy move
//! protocol of Fig. 11 applies to *every* transport — the single-port bank
//! only gets it while another qubit happens to be checked out.
//!
//! This is an extension beyond the paper's single-port design (the paper's CR
//! touches each point bank on one side only); it exists to exercise the
//! per-anchor vacancy rings of [`lsqca_lattice::CellGrid::register_anchors`]
//! and to give hybrid floorplans a third bank flavour whose latency/area
//! trade-off sits between the point and line SAMs. The price is one extra
//! cell per bank and a second CR attachment
//! (see `MemorySystem::cr_cells`).
//!
//! [`lsqca_lattice::CellGrid::register_anchors`]: lsqca_lattice::CellGrid::register_anchors

use crate::ledger::CheckoutLedger;
use lsqca_lattice::{Beats, CellGrid, Coord, LatticeError, ProtocolLatencies, QubitTag};

/// A single dual-port point-SAM bank.
///
/// The bank enforces an `n + 2`-cell invariant through its checkout ledger:
/// at all times `stored + checked_out == n` and the grid holds exactly
/// `2 + checked_out` vacancies (one scan cell per port plus one per qubit
/// currently in the CR). Like the single-port bank,
/// [`DualPointSamBank::store`] rejects any qubit that was not checked out of
/// *this* bank with [`LatticeError::QubitNotCheckedOut`].
#[derive(Debug, Clone, PartialEq)]
pub struct DualPointSamBank {
    grid: CellGrid,
    /// The two CR-facing cells (west mid-edge, east mid-edge).
    ports: [Coord; 2],
    /// Current position of each port's scan vacancy (approximate tracking).
    scans: [Coord; 2],
    /// Original home cell of every qubit, for the non-locality-aware store.
    home: Vec<Option<Coord>>,
    /// Exactly which of this bank's qubits are checked out to the CR.
    ledger: CheckoutLedger,
    latencies: ProtocolLatencies,
    /// Exact cell count charged to this bank (`data qubits + 2`).
    cell_count: u64,
    /// Store returning qubits near the chosen port (true) or at home (false).
    locality_aware_store: bool,
}

impl DualPointSamBank {
    /// Builds a bank holding `qubits`, placed row-major in a near-square grid
    /// with the two scan cells starting at the west and east ports.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty.
    pub fn new(qubits: &[QubitTag], locality_aware_store: bool) -> Self {
        assert!(
            !qubits.is_empty(),
            "a dual-port point-SAM bank needs at least one qubit"
        );
        let n = qubits.len() as u64;
        // Near-square rectangle with room for both scan cells; at least two
        // columns so the two ports are distinct cells.
        let width = (((n + 2) as f64).sqrt().ceil() as u32).max(2);
        let height = ((n + 2) as f64 / width as f64).ceil() as u32;
        let mut grid = CellGrid::new(width, height);
        let west = Coord::new(0, height / 2);
        let east = Coord::new(width - 1, height / 2);

        let mut cells = (0..height)
            .flat_map(|y| (0..width).map(move |x| Coord::new(x, y)))
            .filter(|&c| c != west && c != east);
        let table_len = qubits.iter().map(|q| q.0 as usize + 1).max().unwrap_or(0);
        let mut home = vec![None; table_len];
        for &q in qubits {
            let cell = cells
                .next()
                .expect("grid sized to hold every qubit plus both scan cells");
            grid.place(q, cell)
                .expect("cells are distinct and in bounds");
            home[q.0 as usize] = Some(cell);
        }
        // One vacancy ring set per port: `nearest_vacant(port)` is an O(1)
        // bit scan for either side, and every mutation maintains both.
        grid.register_anchors(&[west, east])
            .expect("both ports lie inside the bank grid");

        let bank = DualPointSamBank {
            grid,
            ports: [west, east],
            scans: [west, east],
            home,
            ledger: CheckoutLedger::new(table_len),
            latencies: ProtocolLatencies::paper(),
            cell_count: n + 2,
            locality_aware_store,
        };
        bank.debug_assert_invariants();
        bank
    }

    /// Debug-asserts the `n + 2`-cell shape after every mutation.
    #[inline]
    fn debug_assert_invariants(&self) {
        let n = self.cell_count as usize - 2;
        debug_assert_eq!(
            self.stored_qubits() + self.ledger.count(),
            n,
            "stored + checked_out must equal the bank's data-qubit count"
        );
        let padding = self.grid.cell_count() as usize - (n + 2);
        debug_assert_eq!(
            self.grid.vacant_count(),
            2 + padding + self.ledger.count(),
            "a dual-port bank holds two scan vacancies (plus grid padding) plus one per checkout"
        );
        debug_assert!(
            self.ledger.iter().all(|q| !self.grid.contains(q)),
            "a checked-out qubit cannot simultaneously occupy a cell"
        );
    }

    /// Exact number of cells charged to this bank (data qubits + two scan cells).
    pub fn cell_count(&self) -> u64 {
        self.cell_count
    }

    /// The two bank-local CR-facing cells `(west, east)`, each the anchor of
    /// one of the grid's vacancy-ring sets.
    pub fn ports(&self) -> (Coord, Coord) {
        (self.ports[0], self.ports[1])
    }

    /// Number of qubits currently stored in the bank.
    pub fn stored_qubits(&self) -> usize {
        self.grid.occupied_count()
    }

    /// True if `qubit` is currently stored in this bank.
    pub fn contains(&self, qubit: QubitTag) -> bool {
        self.grid.contains(qubit)
    }

    /// Number of this bank's qubits currently checked out to the CR.
    pub fn checked_out_count(&self) -> usize {
        self.ledger.count()
    }

    /// True if `qubit` is currently checked out of this bank to the CR.
    pub fn is_checked_out(&self, qubit: QubitTag) -> bool {
        self.ledger.is_checked_out(qubit)
    }

    fn position(&self, qubit: QubitTag) -> Result<Coord, LatticeError> {
        self.grid
            .position_of(qubit)
            .ok_or(LatticeError::QubitNotPresent { qubit })
    }

    /// Load cost of a qubit at `pos` through port `side`. With two scan cells
    /// the two-vacancy move protocol always applies.
    fn load_cost_via(&self, pos: Coord, side: usize) -> Beats {
        let port = self.ports[side];
        let seek = Beats(self.scans[side].manhattan_distance(pos) as u64);
        let transport = self
            .latencies
            .point_transport(pos.dx(port), pos.dy(port), true);
        seek + transport + self.latencies.move_step
    }

    /// The cheaper port side for a qubit at `pos` (ties go west).
    fn best_side(&self, pos: Coord) -> usize {
        if self.load_cost_via(pos, 1) < self.load_cost_via(pos, 0) {
            1
        } else {
            0
        }
    }

    /// Estimated load latency without mutating the bank state.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn peek_load(&self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        Ok(self.load_cost_via(pos, self.best_side(pos)))
    }

    /// Loads `qubit` out through the cheaper port and returns the latency.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn load(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        let side = self.best_side(pos);
        let cost = self.load_cost_via(pos, side);
        self.grid.remove(qubit)?;
        self.ledger.check_out(qubit);
        // The vacancy that carried the target ends up back at its port.
        self.scans[side] = self.ports[side];
        self.debug_assert_invariants();
        Ok(cost)
    }

    /// Stores `qubit` back through whichever port has the nearer parking
    /// vacancy (locality-aware) or towards its home cell. Only qubits in the
    /// checkout ledger are accepted.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::QubitAlreadyPlaced`] if the qubit never left.
    /// * [`LatticeError::QubitNotCheckedOut`] if the qubit was never loaded
    ///   from this bank (including foreign tags).
    pub fn store(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        if let Some(at) = self.grid.position_of(qubit) {
            return Err(LatticeError::QubitAlreadyPlaced { qubit, at });
        }
        if !self.ledger.is_checked_out(qubit) {
            return Err(LatticeError::QubitNotCheckedOut { qubit });
        }
        let (dest, side) = if self.locality_aware_store {
            // Cheaper side: the port whose nearest vacancy is closer to it.
            let candidate = |side: usize| {
                self.grid
                    .nearest_vacant(self.ports[side])
                    .map(|c| (c.manhattan_distance(self.ports[side]), side, c))
            };
            let (_, side, _) = [candidate(0), candidate(1)]
                .into_iter()
                .flatten()
                .min()
                .expect("a checked-out qubit keeps a vacancy open");
            (
                self.grid
                    .place_at_nearest_vacancy(qubit, self.ports[side])?,
                side,
            )
        } else {
            let home = self
                .home
                .get(qubit.0 as usize)
                .copied()
                .flatten()
                .ok_or(LatticeError::QubitNotPresent { qubit })?;
            let dest = if self.grid.is_vacant(home) {
                self.grid.place(qubit, home)?;
                home
            } else {
                self.grid.place_at_nearest_vacancy(qubit, home)?
            };
            (dest, self.best_side(dest))
        };
        let port = self.ports[side];
        let transport = self
            .latencies
            .point_transport(dest.dx(port), dest.dy(port), true);
        self.ledger.check_in(qubit);
        self.scans[side] = port;
        self.debug_assert_invariants();
        Ok(transport + self.latencies.move_step)
    }

    /// Walks the nearer scan cell next to `qubit` for an in-memory
    /// single-qubit operation and returns the seek latency.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn in_memory_seek(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        let side = if self.scans[1].manhattan_distance(pos) < self.scans[0].manhattan_distance(pos)
        {
            1
        } else {
            0
        };
        let seek = Beats(self.scans[side].manhattan_distance(pos) as u64);
        self.scans[side] = pos;
        Ok(seek)
    }

    /// Brings `qubit` adjacent to the cheaper port for an in-memory two-qubit
    /// operation with a CR slot (Sec. V-C semantics, port chosen per access).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not stored here.
    pub fn in_memory_two_qubit_access(&mut self, qubit: QubitTag) -> Result<Beats, LatticeError> {
        let pos = self.position(qubit)?;
        let side = self.best_side(pos);
        let port = self.ports[side];
        let (from, dest) = self.grid.relocate_into_nearest_vacancy(qubit, port)?;
        let seek = Beats(self.scans[side].manhattan_distance(from) as u64);
        let transport = self
            .latencies
            .point_transport(from.dx(dest), from.dy(dest), true);
        self.scans[side] = from;
        self.debug_assert_invariants();
        Ok(seek + transport)
    }

    /// Hot-set migration swap, mirroring
    /// [`PointSamBank::migrate_swap`](crate::PointSamBank::migrate_swap):
    /// `outgoing` leaves through its cheaper port, `incoming` parks at the
    /// vacancy nearest whichever port is cheaper for it.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::QubitNotPresent`] if `outgoing` is not stored here.
    /// * [`LatticeError::QubitAlreadyPlaced`] if `incoming` already is.
    pub fn migrate_swap(
        &mut self,
        outgoing: QubitTag,
        incoming: QubitTag,
    ) -> Result<Beats, LatticeError> {
        let pos = self.position(outgoing)?;
        if let Some(at) = self.grid.position_of(incoming) {
            return Err(LatticeError::QubitAlreadyPlaced {
                qubit: incoming,
                at,
            });
        }
        let out_side = self.best_side(pos);
        let out_cost = self.load_cost_via(pos, out_side);
        self.grid.remove(outgoing)?;
        let table_len = incoming.0 as usize + 1;
        if table_len > self.home.len() {
            self.home.resize(table_len, None);
        }
        self.ledger.grow(table_len);
        let in_side = (0..2)
            .min_by_key(|&side| {
                self.grid
                    .nearest_vacant(self.ports[side])
                    .map(|c| c.manhattan_distance(self.ports[side]))
                    .unwrap_or(u32::MAX)
            })
            .expect("two ports");
        let port = self.ports[in_side];
        let dest = self.grid.place_at_nearest_vacancy(incoming, port)?;
        let in_cost = self
            .latencies
            .point_transport(dest.dx(port), dest.dy(port), true)
            + self.latencies.move_step;
        self.home[outgoing.0 as usize] = None;
        self.home[incoming.0 as usize] = Some(dest);
        self.scans[out_side] = self.ports[out_side];
        self.debug_assert_invariants();
        Ok(out_cost + in_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::PointSamBank;

    fn qubits(n: u32) -> Vec<QubitTag> {
        (0..n).map(QubitTag).collect()
    }

    #[test]
    fn cell_count_is_qubits_plus_two() {
        let bank = DualPointSamBank::new(&qubits(400), true);
        assert_eq!(bank.cell_count(), 402);
        assert_eq!(bank.stored_qubits(), 400);
        let (west, east) = bank.ports();
        assert_ne!(west, east);
        assert_eq!(west.x, 0);
    }

    #[test]
    fn worst_case_load_beats_the_single_port_bank() {
        let n = 200u32;
        let dual = DualPointSamBank::new(&qubits(n), true);
        let single = PointSamBank::new(&qubits(n), true);
        let worst = |peek: &dyn Fn(QubitTag) -> Beats| (0..n).map(|q| peek(QubitTag(q))).max();
        let dual_worst = worst(&|q| dual.peek_load(q).unwrap()).unwrap();
        let single_worst = worst(&|q| single.peek_load(q).unwrap()).unwrap();
        assert!(
            dual_worst < single_worst,
            "dual-port worst case {dual_worst} should beat single-port {single_worst}"
        );
    }

    #[test]
    fn load_then_store_round_trip() {
        let mut bank = DualPointSamBank::new(&qubits(30), true);
        let q = QubitTag(29);
        let load = bank.load(q).unwrap();
        assert!(load > Beats(0));
        assert!(!bank.contains(q));
        assert!(bank.is_checked_out(q));
        let store = bank.store(q).unwrap();
        assert!(bank.contains(q));
        assert!(!bank.is_checked_out(q));
        // Locality-aware store parks next to a port, so reloading is cheap.
        assert!(store < load);
        assert!(bank.peek_load(q).unwrap() < load);
    }

    #[test]
    fn store_of_a_never_checked_out_qubit_is_rejected() {
        let mut bank = DualPointSamBank::new(&qubits(9), true);
        assert!(matches!(
            bank.store(QubitTag(100)),
            Err(LatticeError::QubitNotCheckedOut {
                qubit: QubitTag(100)
            })
        ));
        assert!(matches!(
            bank.store(QubitTag(3)),
            Err(LatticeError::QubitAlreadyPlaced { .. })
        ));
        assert_eq!(bank.stored_qubits(), 9);
        assert_eq!(bank.checked_out_count(), 0);
    }

    #[test]
    fn home_store_policy_returns_to_the_original_cell() {
        let mut bank = DualPointSamBank::new(&qubits(36), false);
        let q = QubitTag(17);
        let home = bank.grid.position_of(q).unwrap();
        bank.load(q).unwrap();
        bank.store(q).unwrap();
        assert_eq!(bank.grid.position_of(q), Some(home));
    }

    #[test]
    fn in_memory_accesses_work_from_both_sides() {
        let mut bank = DualPointSamBank::new(&qubits(100), true);
        let target = QubitTag(99);
        let load_estimate = bank.peek_load(target).unwrap();
        let seek = bank.in_memory_seek(target).unwrap();
        assert!(seek < load_estimate);
        // Seeking again is free: a scan cell is parked next to the qubit.
        assert_eq!(bank.in_memory_seek(target).unwrap(), Beats(0));
        let access = bank.in_memory_two_qubit_access(QubitTag(50)).unwrap();
        assert!(access > Beats(0));
        let again = bank.in_memory_two_qubit_access(QubitTag(50)).unwrap();
        assert!(again < access);
    }

    #[test]
    fn migrate_swap_conserves_the_bank_shape() {
        let mut bank = DualPointSamBank::new(&qubits(25), true);
        let cost = bank.migrate_swap(QubitTag(24), QubitTag(90)).unwrap();
        assert!(cost > Beats(0));
        assert!(!bank.contains(QubitTag(24)));
        assert!(bank.contains(QubitTag(90)));
        assert_eq!(bank.stored_qubits(), 25);
        // The admitted qubit can round-trip like a native one.
        bank.load(QubitTag(90)).unwrap();
        bank.store(QubitTag(90)).unwrap();
        assert!(matches!(
            bank.migrate_swap(QubitTag(24), QubitTag(5)),
            Err(LatticeError::QubitNotPresent { .. })
        ));
        assert!(matches!(
            bank.migrate_swap(QubitTag(5), QubitTag(90)),
            Err(LatticeError::QubitAlreadyPlaced { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_bank_panics() {
        let _ = DualPointSamBank::new(&[], true);
    }
}
