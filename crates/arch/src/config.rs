//! Architecture configuration.

use std::fmt;

/// Which floorplan strategy the machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloorplanKind {
    /// LSQCA with point-SAM banks (single scan cell per bank). The paper limits
    /// the bank count to 1 or 2 because every bank must touch the CR.
    PointSam {
        /// Number of SAM banks.
        banks: u32,
    },
    /// LSQCA with **dual-port** point-SAM banks: each bank keeps a scan
    /// vacancy at a CR port on *both* its west and east edge, so every access
    /// picks the cheaper side and the second vacancy's faster move protocol
    /// (Fig. 11) is always available. Costs one extra cell per bank and a
    /// second CR attachment; an extension beyond the paper's single-port
    /// design, enabled by the per-anchor vacancy rings.
    DualPointSam {
        /// Number of SAM banks.
        banks: u32,
    },
    /// LSQCA with line-SAM banks (a scan line per bank); 1, 2, or 4 banks are
    /// evaluated in the paper.
    LineSam {
        /// Number of SAM banks.
        banks: u32,
    },
    /// The conventional 1/2-density floorplan used as the paper's baseline:
    /// unit-latency access to every qubit, unbounded parallelism (no path
    /// conflicts assumed), 50% memory density.
    Conventional,
}

impl FloorplanKind {
    /// Number of SAM banks (zero for the conventional floorplan).
    pub fn bank_count(self) -> u32 {
        match self {
            FloorplanKind::PointSam { banks }
            | FloorplanKind::DualPointSam { banks }
            | FloorplanKind::LineSam { banks } => banks,
            FloorplanKind::Conventional => 0,
        }
    }

    /// True for the conventional baseline.
    pub fn is_conventional(self) -> bool {
        matches!(self, FloorplanKind::Conventional)
    }

    /// Short label used in figures, e.g. `"Point #SAM=2"`.
    pub fn label(self) -> String {
        match self {
            FloorplanKind::PointSam { banks } => format!("Point #SAM={banks}"),
            FloorplanKind::DualPointSam { banks } => format!("DualPoint #SAM={banks}"),
            FloorplanKind::LineSam { banks } => format!("Line #SAM={banks}"),
            FloorplanKind::Conventional => "Conventional".to_string(),
        }
    }
}

impl fmt::Display for FloorplanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Full architectural configuration for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// The floorplan strategy.
    pub floorplan: FloorplanKind,
    /// Number of magic-state factories.
    pub factories: u32,
    /// Magic-state buffer capacity; defaults to `2 × factories` as in the paper.
    pub magic_buffer: Option<u32>,
    /// Fraction `f` of data cells placed in an attached conventional floorplan
    /// (the hybrid layout of Sec. V-D / VI-C). `0.0` is pure LSQCA; the
    /// conventional floorplan ignores this field (it behaves as `f = 1`).
    pub hybrid_fraction: f64,
    /// Number of register cells in the CR (the paper fixes this to two).
    pub cr_slots: u32,
    /// Use the locality-aware store policy (Sec. V-B). The paper's evaluation
    /// always enables it; disabling it is useful for ablation studies.
    pub locality_aware_store: bool,
}

impl ArchConfig {
    /// Creates a configuration with the paper's defaults: no hybrid region,
    /// two CR register slots, magic buffer of `2 × factories`.
    ///
    /// # Panics
    ///
    /// Panics if a SAM floorplan is requested with zero banks, if the point SAM
    /// has more than two banks, or if `factories` is zero.
    pub fn new(floorplan: FloorplanKind, factories: u32) -> Self {
        let config = ArchConfig {
            floorplan,
            factories,
            magic_buffer: None,
            hybrid_fraction: 0.0,
            cr_slots: 2,
            locality_aware_store: true,
        };
        config.validate();
        config
    }

    /// The conventional-baseline configuration with the given factory count.
    pub fn conventional(factories: u32) -> Self {
        ArchConfig::new(FloorplanKind::Conventional, factories)
    }

    /// Returns a copy with the hybrid fraction set.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn with_hybrid_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "hybrid fraction must be within [0, 1]"
        );
        self.hybrid_fraction = fraction;
        self
    }

    /// Returns a copy with an explicit magic-state buffer capacity.
    pub fn with_magic_buffer(mut self, capacity: u32) -> Self {
        self.magic_buffer = Some(capacity);
        self
    }

    /// Effective magic-state buffer capacity (`2 × factories` unless overridden).
    pub fn magic_buffer_capacity(&self) -> u32 {
        self.magic_buffer.unwrap_or(2 * self.factories)
    }

    fn validate(&self) {
        assert!(
            self.factories > 0,
            "at least one magic-state factory is required"
        );
        match self.floorplan {
            FloorplanKind::PointSam { banks } => {
                assert!(banks > 0, "point SAM needs at least one bank");
                assert!(
                    banks <= 2,
                    "the paper limits point SAM to at most two banks"
                );
            }
            FloorplanKind::DualPointSam { banks } => {
                assert!(banks > 0, "dual-port point SAM needs at least one bank");
                assert!(
                    banks <= 2,
                    "dual-port point SAM is limited to two banks (each already \
                     claims two CR attachments)"
                );
            }
            FloorplanKind::LineSam { banks } => {
                assert!(banks > 0, "line SAM needs at least one bank");
            }
            FloorplanKind::Conventional => {}
        }
    }

    /// The five SAM configurations evaluated in Fig. 13/14 plus the baseline:
    /// point SAM with 1/2 banks, line SAM with 1/2/4 banks, conventional.
    pub fn paper_floorplans() -> Vec<FloorplanKind> {
        vec![
            FloorplanKind::PointSam { banks: 1 },
            FloorplanKind::PointSam { banks: 2 },
            FloorplanKind::LineSam { banks: 1 },
            FloorplanKind::LineSam { banks: 2 },
            FloorplanKind::LineSam { banks: 4 },
            FloorplanKind::Conventional,
        ]
    }
}

impl fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} with {} factories (buffer {}), hybrid f={:.2}, {} CR slots",
            self.floorplan,
            self.factories,
            self.magic_buffer_capacity(),
            self.hybrid_fraction,
            self.cr_slots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
        assert_eq!(c.cr_slots, 2);
        assert_eq!(c.magic_buffer_capacity(), 2);
        assert_eq!(c.hybrid_fraction, 0.0);
        let c = ArchConfig::new(FloorplanKind::LineSam { banks: 4 }, 4);
        assert_eq!(c.magic_buffer_capacity(), 8);
    }

    #[test]
    fn builder_methods() {
        let c = ArchConfig::conventional(2)
            .with_hybrid_fraction(0.5)
            .with_magic_buffer(7);
        assert!(c.floorplan.is_conventional());
        assert_eq!(c.hybrid_fraction, 0.5);
        assert_eq!(c.magic_buffer_capacity(), 7);
    }

    #[test]
    fn labels() {
        assert_eq!(FloorplanKind::PointSam { banks: 2 }.label(), "Point #SAM=2");
        assert_eq!(FloorplanKind::LineSam { banks: 4 }.label(), "Line #SAM=4");
        assert_eq!(FloorplanKind::Conventional.label(), "Conventional");
        assert_eq!(FloorplanKind::Conventional.bank_count(), 0);
        assert_eq!(FloorplanKind::LineSam { banks: 4 }.bank_count(), 4);
    }

    #[test]
    fn paper_floorplans_cover_fig13() {
        let plans = ArchConfig::paper_floorplans();
        assert_eq!(plans.len(), 6);
        assert!(plans.contains(&FloorplanKind::Conventional));
    }

    #[test]
    #[should_panic(expected = "at most two banks")]
    fn point_sam_with_four_banks_is_rejected() {
        let _ = ArchConfig::new(FloorplanKind::PointSam { banks: 4 }, 1);
    }

    #[test]
    #[should_panic(expected = "at least one magic-state factory")]
    fn zero_factories_is_rejected() {
        let _ = ArchConfig::new(FloorplanKind::Conventional, 0);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn out_of_range_hybrid_fraction_is_rejected() {
        let _ = ArchConfig::conventional(1).with_hybrid_fraction(1.5);
    }

    #[test]
    fn display_is_descriptive() {
        let c = ArchConfig::new(FloorplanKind::LineSam { banks: 2 }, 4);
        let s = c.to_string();
        assert!(s.contains("Line #SAM=2"));
        assert!(s.contains("4 factories"));
    }
}
